/**
 * @file
 * Architectural checkpoint tests: snapshot/restore round-trips across
 * the bitwise config matrix, on-disk format rejection, the interval
 * scheduler, and checkpoint-aware resume identity.
 *
 * The load-bearing property mirrors the bitwise report matrix:
 * restoring a mid-run snapshot into a freshly constructed System and
 * continuing must be indistinguishable — in serialized state bytes
 * and in every statistic — from never having stopped. Anything less
 * and the interval engine's functional/detailed alternation would
 * drift from the straight-through truth it claims to estimate.
 */

#include <gtest/gtest.h>

#include "expect_error.hh"

#include <cstdio>
#include <fstream>
#include <memory>

#include "common/crc32.hh"
#include "common/snapshot.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "sim/options.hh"

using namespace pinte;

namespace
{

/** One configuration of the round-trip matrix. */
struct Row
{
    std::string name;
    MachineConfig machine;
    std::vector<std::string> workloads;
};

/**
 * The same subsystem coverage the bitwise report matrix pins: every
 * replacement policy, both non-default inclusion modes, prefetchers,
 * PInTE scopes, a pair co-run, and a no-PInTE isolation config.
 */
std::vector<Row>
matrix()
{
    std::vector<Row> rows;
    {
        MachineConfig m = MachineConfig::scaled();
        m.pinte.pInduce = 0.2;
        rows.push_back({"lru_base", m, {"450.soplex"}});
    }
    {
        MachineConfig m = MachineConfig::scaled();
        m.pinte.pInduce = 0.35;
        m.llc.replacement = parseReplacement("rrip");
        m.llc.inclusion = parseInclusion("inclusive");
        m.prefetch = PrefetchConfig::parse("NN0");
        rows.push_back({"rrip_incl_pf", m, {"429.mcf"}});
    }
    {
        MachineConfig m = MachineConfig::scaled();
        m.pinte.pInduce = 0.1;
        m.llc.replacement = parseReplacement("plru");
        m.llc.inclusion = parseInclusion("exclusive");
        m.pinteScope = PInteScope::L2AndLlc;
        rows.push_back({"plru_excl_scope", m, {"470.lbm"}});
    }
    {
        MachineConfig m = MachineConfig::scaled();
        m.pinte.pInduce = 0.3;
        m.llc.replacement = parseReplacement("nmru");
        m.prefetch = PrefetchConfig::parse("NNN");
        m.dram.contentionExtra = 12;
        rows.push_back({"nmru_pf_dram", m, {"462.libquantum"}});
    }
    {
        MachineConfig m = MachineConfig::scaled();
        m.pinte.pInduce = 0.25;
        m.llc.replacement = parseReplacement("drrip");
        m.prefetch = PrefetchConfig::parse("NNI");
        rows.push_back({"drrip_pf", m, {"433.milc"}});
    }
    {
        MachineConfig m = MachineConfig::scaled(2);
        m.llc.replacement = parseReplacement("rrip");
        rows.push_back({"pair_rrip", m, {"450.soplex", "470.lbm"}});
    }
    {
        MachineConfig m = MachineConfig::scaled();
        m.llc.replacement = parseReplacement("random");
        rows.push_back({"random_iso", m, {"401.bzip2"}});
    }
    {
        MachineConfig m = MachineConfig::scaled();
        m.pinte.pInduce = 0.3;
        m.llc.replacement = parseReplacement("lhd");
        rows.push_back({"lhd_pinte", m, {"450.soplex"}});
    }
    {
        MachineConfig m = MachineConfig::scaled();
        m.pinte.pInduce = 0.3;
        m.pinteScope = PInteScope::L2Only;
        rows.push_back({"l2scope", m, {"444.namd"}});
    }
    return rows;
}

/** A System plus the trace generators it reads (sources not owned). */
struct Rig
{
    std::vector<std::unique_ptr<TraceGenerator>> gens;
    std::unique_ptr<System> sys;

    Rig(const MachineConfig &m,
        const std::vector<std::string> &workloads)
    {
        std::vector<TraceSource *> sources;
        for (const auto &name : workloads) {
            gens.push_back(
                std::make_unique<TraceGenerator>(findWorkload(name)));
            sources.push_back(gens.back().get());
        }
        sys = std::make_unique<System>(m, sources);
    }
};

/**
 * Advance core 0 by `total` instructions in fixed `step` requests —
 * the same call sequence on both sides of a round-trip comparison, so
 * quantum-boundary overshoot is identical by construction (exactly
 * how the experiment loop replays its schedule across a resume).
 */
void
runSteps(System &sys, InstCount total, InstCount step)
{
    for (InstCount done = 0; done < total; done += step)
        sys.runUntilCore0(std::min(step, total - done));
}

/** Full serialized machine state. */
std::vector<std::uint8_t>
stateBytes(const System &sys)
{
    SnapshotWriter w;
    sys.saveState(w);
    return w.bytes();
}

/** Temp file path for this test binary; removed by each test. */
std::string
tempPath(const std::string &tag)
{
    return ::testing::TempDir() + "pinte_ckpt_" + tag + ".bin";
}

ExperimentParams
quick()
{
    ExperimentParams p;
    p.warmup = 5000;
    p.roi = 15000;
    p.sampleEvery = 3000;
    return p;
}

} // namespace

TEST(CheckpointRoundtrip, MatrixBitwiseIdenticalAfterRestore)
{
    constexpr InstCount warmup = 4000, half = 4000, step = 1000;
    for (const Row &row : matrix()) {
        SCOPED_TRACE(row.name);
        const std::string path = tempPath(row.name);

        // Straight-through reference.
        Rig straight(row.machine, row.workloads);
        straight.sys->warmup(warmup);
        runSteps(*straight.sys, 2 * half, step);

        // Checkpointed: identical run, snapshotted at the midpoint and
        // restored into a *fresh* machine for the second half.
        Rig first(row.machine, row.workloads);
        first.sys->warmup(warmup);
        runSteps(*first.sys, half, step);
        first.sys->snapshot(path);

        Rig second(row.machine, row.workloads);
        second.sys->restore(path);
        runSteps(*second.sys, half, step);

        EXPECT_EQ(stateBytes(*straight.sys), stateBytes(*second.sys))
            << "restored state diverged from straight-through";
        EXPECT_EQ(straight.sys->core(0).stats().instructions,
                  second.sys->core(0).stats().instructions);
        EXPECT_EQ(straight.sys->llc().stats().perCore[0].misses,
                  second.sys->llc().stats().perCore[0].misses);
        if (straight.sys->pinte()) {
            ASSERT_NE(second.sys->pinte(), nullptr);
            EXPECT_EQ(straight.sys->pinte()->stats().invalidations,
                      second.sys->pinte()->stats().invalidations);
        }
        std::remove(path.c_str());
    }
}

TEST(CheckpointRoundtrip, FunctionalModeStateAlsoRoundTrips)
{
    // The interval engine checkpoints between functional phases too;
    // mixed-mode state must restore as exactly as detailed-only state.
    MachineConfig m = MachineConfig::scaled();
    m.pinte.pInduce = 0.2;
    const std::string path = tempPath("functional");

    auto mixed = [](System &sys) {
        sys.setExecMode(ExecMode::FunctionalWarming);
        sys.runUntilCore0(3000);
        sys.setExecMode(ExecMode::Detailed);
        runSteps(sys, 2000, 1000);
    };

    Rig straight(m, {"450.soplex"});
    straight.sys->warmup(2000);
    mixed(*straight.sys);
    mixed(*straight.sys);

    Rig first(m, {"450.soplex"});
    first.sys->warmup(2000);
    mixed(*first.sys);
    first.sys->snapshot(path);

    Rig second(m, {"450.soplex"});
    second.sys->restore(path);
    mixed(*second.sys);

    EXPECT_EQ(stateBytes(*straight.sys), stateBytes(*second.sys));
    std::remove(path.c_str());
}

TEST(CheckpointFormat, CorruptPayloadRejected)
{
    MachineConfig m = MachineConfig::scaled();
    const std::string path = tempPath("corrupt");
    Rig rig(m, {"450.soplex"});
    rig.sys->warmup(2000);
    rig.sys->snapshot(path);

    // Flip one payload byte; the CRC footer must catch it.
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(200);
    char b = 0;
    f.seekg(200);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5a);
    f.seekp(200);
    f.write(&b, 1);
    f.close();

    Rig fresh(m, {"450.soplex"});
    EXPECT_ERROR(fresh.sys->restore(path), SimError, "CRC mismatch");
    std::remove(path.c_str());
}

TEST(CheckpointFormat, TruncatedFileRejected)
{
    MachineConfig m = MachineConfig::scaled();
    const std::string path = tempPath("truncated");
    Rig rig(m, {"450.soplex"});
    rig.sys->warmup(2000);
    rig.sys->snapshot(path);

    std::ifstream in(path, std::ios::binary);
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(raw.data(),
              static_cast<std::streamsize>(raw.size() / 2));
    out.close();

    Rig fresh(m, {"450.soplex"});
    EXPECT_ERROR(fresh.sys->restore(path), SimError, "snapshot");
    std::remove(path.c_str());
}

TEST(CheckpointFormat, UnsupportedVersionRejected)
{
    // Hand-build a well-formed file (valid CRC) carrying a future
    // format version; the version check must fire, not the CRC.
    const std::string path = tempPath("version");
    SnapshotWriter head;
    head.put64(0x50414e5345544e50ull); // snapshot magic
    head.put32(snapshotFormatVersion + 1);
    head.putString("fp");
    head.put64(0);
    std::uint32_t crc =
        crc32(0, head.bytes().data(), head.bytes().size());
    SnapshotWriter tail;
    tail.put32(crc);
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(head.bytes().data()),
              static_cast<std::streamsize>(head.bytes().size()));
    out.write(reinterpret_cast<const char *>(tail.bytes().data()),
              static_cast<std::streamsize>(tail.bytes().size()));
    out.close();

    EXPECT_ERROR(readSnapshotFile(path, ""), SimError,
                 "format version");
    std::remove(path.c_str());
}

TEST(CheckpointFormat, DifferentMachineRejected)
{
    MachineConfig m = MachineConfig::scaled();
    const std::string path = tempPath("fingerprint");
    Rig rig(m, {"450.soplex"});
    rig.sys->warmup(2000);
    rig.sys->snapshot(path);

    MachineConfig other = m;
    other.llc.replacement = parseReplacement("rrip");
    Rig fresh(other, {"450.soplex"});
    EXPECT_ERROR(fresh.sys->restore(path), SimError,
                 "different machine");
    std::remove(path.c_str());
}

TEST(CheckpointFormat, AdHocTraceSourceCannotCheckpoint)
{
    // Sources that don't implement the checkpoint pair must fail
    // loudly: a silent no-op default would corrupt restored streams.
    struct Fixed : TraceSource
    {
        TraceRecord next() override { return {}; }
        void reset() override {}
    } src;
    SnapshotWriter w;
    EXPECT_ERROR(src.saveState(w), SimError, "checkpoint");
}

TEST(CheckpointResume, ExperimentResumesBitwiseIdentical)
{
    // The experiment-level resume path: a run that checkpoints every
    // 6000 ROI instructions leaves its last snapshot at 12000/15000;
    // re-running the same spec resumes there and must produce the
    // straight-through result bit for bit.
    const std::string path = tempPath("resume");
    std::remove(path.c_str());
    const auto spec = findWorkload("450.soplex");
    const MachineConfig m = MachineConfig::scaled();

    ExperimentParams plain = quick();
    const RunResult straight = ExperimentSpec(m)
                                   .workload(spec)
                                   .pinte(0.2)
                                   .params(plain)
                                   .run();

    ExperimentParams ck = quick();
    ck.checkpointPath = path;
    ck.checkpointEvery = 6000;
    const RunResult first = ExperimentSpec(m)
                                .workload(spec)
                                .pinte(0.2)
                                .params(ck)
                                .run();
    const RunResult resumed = ExperimentSpec(m)
                                  .workload(spec)
                                  .pinte(0.2)
                                  .params(ck)
                                  .run();

    for (const RunResult *r : {&first, &resumed}) {
        EXPECT_EQ(r->metrics.ipc, straight.metrics.ipc);
        EXPECT_EQ(r->metrics.llcMisses, straight.metrics.llcMisses);
        EXPECT_EQ(r->pinte.invalidations,
                  straight.pinte.invalidations);
        ASSERT_EQ(r->samples.size(), straight.samples.size());
        for (std::size_t i = 0; i < straight.samples.size(); ++i) {
            EXPECT_EQ(r->samples[i].ipc, straight.samples[i].ipc);
            EXPECT_EQ(r->samples[i].instructions,
                      straight.samples[i].instructions);
        }
    }
    std::remove(path.c_str());
}

TEST(CheckpointResume, SampledRunResumesBitwiseIdentical)
{
    // Same property across the interval engine: resuming a sampled
    // run mid-schedule reproduces the uninterrupted sampled result.
    const std::string path = tempPath("resume_sampled");
    std::remove(path.c_str());
    const auto spec = findWorkload("450.soplex");
    const MachineConfig m = MachineConfig::scaled();

    ExperimentParams sp = quick();
    sp.sampling.mode = SampleMode::Periodic;
    sp.sampling.intervalLength = 1000;
    sp.sampling.detailedFraction = 0.25;
    const RunResult straight = ExperimentSpec(m)
                                   .workload(spec)
                                   .pinte(0.2)
                                   .params(sp)
                                   .run();

    ExperimentParams ck = sp;
    ck.checkpointPath = path;
    ck.checkpointEvery = 6000;
    ExperimentSpec(m).workload(spec).pinte(0.2).params(ck).run();
    const RunResult resumed = ExperimentSpec(m)
                                  .workload(spec)
                                  .pinte(0.2)
                                  .params(ck)
                                  .run();

    ASSERT_TRUE(straight.sampled.enabled());
    ASSERT_TRUE(resumed.sampled.enabled());
    EXPECT_EQ(resumed.sampled.intervals, straight.sampled.intervals);
    EXPECT_EQ(resumed.sampled.detailedIntervals,
              straight.sampled.detailedIntervals);
    ASSERT_EQ(resumed.sampled.stats.size(),
              straight.sampled.stats.size());
    for (std::size_t i = 0; i < straight.sampled.stats.size(); ++i) {
        EXPECT_EQ(resumed.sampled.stats[i].mean,
                  straight.sampled.stats[i].mean)
            << straight.sampled.stats[i].name;
        EXPECT_EQ(resumed.sampled.stats[i].ci95,
                  straight.sampled.stats[i].ci95)
            << straight.sampled.stats[i].name;
    }
    std::remove(path.c_str());
}

TEST(CheckpointResume, MismatchedParamsRejected)
{
    // A checkpoint taken under one schedule must not resume a run
    // with a different one: the key embeds the scale parameters.
    const std::string path = tempPath("resume_mismatch");
    std::remove(path.c_str());
    const auto spec = findWorkload("450.soplex");
    const MachineConfig m = MachineConfig::scaled();

    ExperimentParams ck = quick();
    ck.checkpointPath = path;
    ck.checkpointEvery = 6000;
    ExperimentSpec(m).workload(spec).pinte(0.2).params(ck).run();

    ExperimentParams other = ck;
    other.runSeed = 99;
    EXPECT_ERROR(ExperimentSpec(m)
                     .workload(spec)
                     .pinte(0.2)
                     .params(other)
                     .run(),
                 SimError, "different machine");
    std::remove(path.c_str());
}

TEST(IntervalScheduler, PeriodicAnchorsAndPaces)
{
    SamplingParams sp;
    sp.mode = SampleMode::Periodic;
    sp.detailedFraction = 0.1;
    EXPECT_TRUE(intervalIsDetailed(sp, 0)); // anchor
    std::uint64_t detailed = 0;
    for (std::uint64_t k = 0; k < 1000; ++k)
        detailed += intervalIsDetailed(sp, k) ? 1 : 0;
    EXPECT_EQ(detailed, 100u);
}

TEST(IntervalScheduler, RandomConvergesAndIsDeterministic)
{
    SamplingParams sp;
    sp.mode = SampleMode::Random;
    sp.detailedFraction = 0.2;
    sp.seed = 7;
    std::uint64_t detailed = 0;
    for (std::uint64_t k = 0; k < 10000; ++k) {
        const bool d = intervalIsDetailed(sp, k);
        EXPECT_EQ(d, intervalIsDetailed(sp, k)); // pure function
        detailed += d ? 1 : 0;
    }
    // Long-run share converges to the detailed fraction.
    EXPECT_NEAR(static_cast<double>(detailed) / 10000.0, 0.2, 0.02);

    SamplingParams other = sp;
    other.seed = 8;
    std::uint64_t differs = 0;
    for (std::uint64_t k = 0; k < 1000; ++k)
        differs += intervalIsDetailed(sp, k) !=
                           intervalIsDetailed(other, k)
                       ? 1
                       : 0;
    EXPECT_GT(differs, 0u) << "seed does not vary the schedule";
}

TEST(JournalKey, SamplingParamsArePartOfTheIdentity)
{
    // Regression: sampled and detailed runs of the same workload used
    // to share a journal key, so a resumed campaign could serve a
    // detailed result where a sampled one was requested (or vice
    // versa).
    ExperimentParams detailed;
    ExperimentParams sampled = detailed;
    sampled.sampling.mode = SampleMode::Periodic;
    EXPECT_NE(journalKey("fp", detailed, "w", "c"),
              journalKey("fp", sampled, "w", "c"));

    ExperimentParams other = sampled;
    other.sampling.detailedFraction = 0.5;
    EXPECT_NE(journalKey("fp", sampled, "w", "c"),
              journalKey("fp", other, "w", "c"));

    // Sampling-off keys keep the historical format, so journals
    // recorded before the interval engine still resolve.
    EXPECT_EQ(journalKey("fp", detailed, "w", "c"),
              "fp|w" + std::to_string(detailed.warmup) + "|r" +
                  std::to_string(detailed.roi) + "|s" +
                  std::to_string(detailed.sampleEvery) + "|seed" +
                  std::to_string(detailed.runSeed) + "|w|c");
}

TEST(Journal, CompactionRewritesDeadWeight)
{
    // A long-lived journal accretes duplicate keys (independent
    // recorders, e.g. a restarted spool broker) and garbage lines
    // (torn tails). Construction must compact once dead + duplicate
    // lines outnumber live entries, preserving find() exactly.
    const std::string path =
        ::testing::TempDir() + "pinte_journal_compact.jsonl";
    std::remove(path.c_str());

    RunResult a;
    a.workload = "w";
    a.contention = "a";
    a.metrics.ipc = 1.5;
    RunResult b = a;
    b.contention = "b";
    b.metrics.ipc = 2.5;
    RunResult a2 = a;
    a2.metrics.ipc = 3.5;

    {
        // Two independent recorders over the same file — a restarted
        // spool broker racing its predecessor's worker. Each loaded
        // an empty journal, so both append ka: a duplicate line.
        RunJournal j1(path);
        RunJournal j2(path);
        EXPECT_FALSE(j1.compacted());
        j1.record("ka", a);
        j1.record("kb", b);
        j2.record("ka", a2);
    }
    {
        // Interleaved garbage and a torn tail from a SIGKILL.
        std::ofstream app(path, std::ios::app);
        app << "not json at all\n"
            << "{\"key\": \"half";
    }

    {
        // 2 dead + 1 duplicate > 2 live: the load compacts, serving
        // last-wins entries identical to an uncompacted load.
        RunJournal j(path);
        EXPECT_TRUE(j.compacted());
        EXPECT_EQ(j.size(), 2u);
        ASSERT_NE(j.find("ka"), nullptr);
        EXPECT_DOUBLE_EQ(j.find("ka")->metrics.ipc, 3.5);
        ASSERT_NE(j.find("kb"), nullptr);
        EXPECT_DOUBLE_EQ(j.find("kb")->metrics.ipc, 2.5);
        EXPECT_EQ(j.find("half"), nullptr);
    }
    {
        // The rewrite left exactly one line per live entry...
        std::ifstream in(path);
        std::size_t lines = 0;
        std::string line;
        while (std::getline(in, line))
            ++lines;
        EXPECT_EQ(lines, 2u);
    }
    {
        // ...and a reload of the compacted file is clean and serves
        // the same entry set.
        RunJournal j(path);
        EXPECT_FALSE(j.compacted());
        EXPECT_EQ(j.size(), 2u);
        ASSERT_NE(j.find("ka"), nullptr);
        EXPECT_DOUBLE_EQ(j.find("ka")->metrics.ipc, 3.5);
    }
    std::remove(path.c_str());
}

TEST(SampledRun, RejectsIncompatibleCombinations)
{
    const auto spec = findWorkload("450.soplex");
    const MachineConfig m = MachineConfig::scaled();

    ExperimentParams p = quick();
    p.sampling.mode = SampleMode::Periodic;
    p.sampleIntervalCycles = 1024;
    EXPECT_ERROR(
        ExperimentSpec(m).workload(spec).params(p).run(), ConfigError,
        "interval sampling");

    ExperimentParams q = quick();
    q.checkpointPath = tempPath("combo");
    q.sampleIntervalCycles = 1024;
    EXPECT_ERROR(
        ExperimentSpec(m).workload(spec).params(q).run(), ConfigError,
        "time-series");

    ExperimentParams r = quick();
    r.sampling.mode = SampleMode::Periodic;
    r.sampling.detailedFraction = 0.0;
    EXPECT_ERROR(
        ExperimentSpec(m).workload(spec).params(r).run(), ConfigError,
        "detailed");
}

TEST(SampledRun, EstimatesCarryErrorBarsAndSchedule)
{
    const auto spec = findWorkload("450.soplex");
    const MachineConfig m = MachineConfig::scaled();
    ExperimentParams p;
    p.warmup = 5000;
    p.roi = 30000;
    p.sampleEvery = 3000;
    p.sampling.mode = SampleMode::Periodic;
    p.sampling.intervalLength = 1000;
    p.sampling.detailedFraction = 0.2;
    const RunResult r = ExperimentSpec(m)
                            .workload(spec)
                            .pinte(0.2)
                            .params(p)
                            .run();
    ASSERT_TRUE(r.sampled.enabled());
    EXPECT_EQ(r.sampled.intervals, 30u);
    EXPECT_EQ(r.sampled.detailedIntervals, 6u);
    EXPECT_EQ(r.sampled.detailedInstructions, 6000u);
    EXPECT_EQ(r.sampled.totalInstructions, 30000u);
    ASSERT_GE(r.sampled.stats.size(), 5u);
    for (const SampledStat &s : r.sampled.stats) {
        EXPECT_GE(s.ci95, 0.0) << s.name;
        EXPECT_GE(s.mean, 0.0) << s.name;
    }
    // The induced-theft estimate converges toward P_Induce.
    const SampledStat &induced = r.sampled.stats.back();
    EXPECT_EQ(induced.name, "induced_theft_rate");
    EXPECT_NEAR(induced.mean, 0.2, 0.1);
}

TEST(SampledRun, DetailedRunCarriesNoSampledSection)
{
    const RunResult r = ExperimentSpec(MachineConfig::scaled())
                            .workload(findWorkload("450.soplex"))
                            .params(quick())
                            .run();
    EXPECT_FALSE(r.sampled.enabled());
    EXPECT_TRUE(r.sampled.stats.empty());
}
