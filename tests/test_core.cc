/**
 * @file
 * Tests for the OoO timing core (cpu/core.hh).
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "trace/generator.hh"
#include "trace/zoo.hh"

using namespace pinte;

namespace
{

/** Memory stub with a fixed latency. */
class FixedLatency : public MemoryLevel
{
  public:
    explicit FixedLatency(Cycle lat) : lat_(lat) {}

    AccessResult
    access(const MemAccess &req) override
    {
        ++count;
        return {req.cycle + lat_, lat_ <= 4};
    }

    const char *levelName() const override { return "fixed"; }

    int count = 0;

  private:
    Cycle lat_;
};

/** Source of simple independent ALU instructions. */
class AluSource : public TraceSource
{
  public:
    TraceRecord
    next() override
    {
        TraceRecord r;
        r.ip = 0x400000 + (n_ % 64) * 4;
        r.dstReg = static_cast<std::uint8_t>(1 + (n_ % 32));
        ++n_;
        return r;
    }

    void reset() override { n_ = 0; }

  private:
    std::uint64_t n_ = 0;
};

/** Serial dependency chain: each instruction reads the previous dst. */
class ChainSource : public TraceSource
{
  public:
    TraceRecord
    next() override
    {
        TraceRecord r;
        r.ip = 0x400000 + (n_ % 64) * 4;
        r.srcReg[0] = 1;
        r.dstReg = 1;
        r.execLatency = 3;
        ++n_;
        return r;
    }

    void reset() override { n_ = 0; }

  private:
    std::uint64_t n_ = 0;
};

/** Loads every instruction, each to a fresh line. */
class LoadSource : public TraceSource
{
  public:
    explicit LoadSource(bool serialize) : serialize_(serialize) {}

    TraceRecord
    next() override
    {
        TraceRecord r;
        r.ip = 0x400000;
        r.numLoads = 1;
        r.loadAddr[0] = 0x10000000 + n_ * blockSize;
        if (serialize_) {
            r.srcReg[0] = 1;
            r.dstReg = 1;
        } else {
            r.dstReg = static_cast<std::uint8_t>(1 + (n_ % 32));
        }
        ++n_;
        return r;
    }

    void reset() override { n_ = 0; }

  private:
    bool serialize_;
    std::uint64_t n_ = 0;
};

/** Branch every instruction with a fixed or random outcome. */
class BranchSource : public TraceSource
{
  public:
    explicit BranchSource(double taken_prob)
        : rng_(7), prob_(taken_prob)
    {}

    TraceRecord
    next() override
    {
        TraceRecord r;
        r.ip = 0x400000;
        r.isBranch = true;
        r.branchTaken = rng_.drawBool(prob_);
        r.branchTarget = 0x400100;
        return r;
    }

    void reset() override { rng_.reseed(7); }

  private:
    Rng rng_;
    double prob_;
};

CoreConfig
basicConfig()
{
    CoreConfig c;
    c.predictor = BranchPredictorKind::Bimodal;
    return c;
}

} // namespace

TEST(Core, RetiresRequestedInstructions)
{
    AluSource src;
    Core core(basicConfig(), 0, &src, nullptr, nullptr);
    core.runInstructions(1000);
    EXPECT_GE(core.retired(), 1000u);
}

TEST(Core, IpcBoundedByRetireWidth)
{
    AluSource src;
    Core core(basicConfig(), 0, &src, nullptr, nullptr);
    core.runInstructions(10000);
    EXPECT_LE(core.stats().ipc(), 4.0 + 1e-9);
    EXPECT_GT(core.stats().ipc(), 1.0); // independent ALU ops fly
}

TEST(Core, DependencyChainLimitsIpc)
{
    AluSource alu;
    ChainSource chain;
    Core fast(basicConfig(), 0, &alu, nullptr, nullptr);
    Core slow(basicConfig(), 0, &chain, nullptr, nullptr);
    fast.runInstructions(5000);
    slow.runInstructions(5000);
    // 3-cycle serial chain -> IPC ~1/3; independent ops much higher.
    EXPECT_LT(slow.stats().ipc(), 0.5);
    EXPECT_GT(fast.stats().ipc(), 2.0 * slow.stats().ipc());
}

TEST(Core, SlowMemoryLowersIpc)
{
    LoadSource src_fast(false), src_slow(false);
    FixedLatency fast_mem(4), slow_mem(200);
    Core fast(basicConfig(), 0, &src_fast, nullptr, &fast_mem);
    Core slow(basicConfig(), 0, &src_slow, nullptr, &slow_mem);
    fast.runInstructions(3000);
    slow.runInstructions(3000);
    EXPECT_GT(fast.stats().ipc(), slow.stats().ipc());
}

TEST(Core, MlpHidesLatencyForIndependentLoads)
{
    LoadSource independent(false), serial(true);
    FixedLatency mem_a(100), mem_b(100);
    Core mlp(basicConfig(), 0, &independent, nullptr, &mem_a);
    Core chain(basicConfig(), 0, &serial, nullptr, &mem_b);
    mlp.runInstructions(2000);
    chain.runInstructions(2000);
    // Independent loads overlap in the ROB; serial loads pay the full
    // latency each. Expect a large IPC gap.
    EXPECT_GT(mlp.stats().ipc(), 5.0 * chain.stats().ipc());
}

TEST(Core, AmatReflectsMemoryLatency)
{
    LoadSource src(false);
    FixedLatency mem(150);
    Core core(basicConfig(), 0, &src, nullptr, &mem);
    core.runInstructions(2000);
    EXPECT_NEAR(core.stats().amat(), 150.0, 1.0);
}

TEST(Core, BranchMispredictsSlowProgress)
{
    BranchSource predictable(1.0), random(0.5);
    Core fast(basicConfig(), 0, &predictable, nullptr, nullptr);
    Core slow(basicConfig(), 0, &random, nullptr, nullptr);
    fast.runInstructions(5000);
    slow.runInstructions(5000);
    EXPECT_GT(fast.stats().ipc(), 1.5 * slow.stats().ipc());
    EXPECT_GT(slow.stats().mispredicts, 1000u);
    EXPECT_LT(fast.stats().mispredicts, 100u);
}

TEST(Core, BranchAccuracyTracked)
{
    BranchSource predictable(1.0);
    Core core(basicConfig(), 0, &predictable, nullptr, nullptr);
    core.runInstructions(5000);
    EXPECT_GT(core.stats().branchAccuracy(), 0.99);
    EXPECT_EQ(core.stats().branches, core.predictor().lookups());
}

TEST(Core, InstructionFetchTouchesL1i)
{
    AluSource src;
    FixedLatency l1i(1);
    Core core(basicConfig(), 0, &src, &l1i, nullptr);
    core.runInstructions(1000);
    EXPECT_GT(l1i.count, 0);
}

TEST(Core, IcacheMissStallsFrontend)
{
    AluSource src_a, src_b;
    FixedLatency fast_icache(1), slow_icache(300);
    Core fast(basicConfig(), 0, &src_a, &fast_icache, nullptr);
    Core slow(basicConfig(), 0, &src_b, &slow_icache, nullptr);
    fast.runInstructions(2000);
    slow.runInstructions(2000);
    EXPECT_GT(fast.stats().ipc(), 2.0 * slow.stats().ipc());
}

TEST(Core, DeterministicAcrossRuns)
{
    TraceGenerator ga(findWorkload("435.gromacs"));
    TraceGenerator gb(findWorkload("435.gromacs"));
    Core a(basicConfig(), 0, &ga, nullptr, nullptr);
    Core b(basicConfig(), 0, &gb, nullptr, nullptr);
    a.runInstructions(5000);
    b.runInstructions(5000);
    EXPECT_EQ(a.cycle(), b.cycle());
    EXPECT_EQ(a.retired(), b.retired());
    EXPECT_EQ(a.stats().mispredicts, b.stats().mispredicts);
}

TEST(Core, ClearStatsPreservesRetiredTotal)
{
    AluSource src;
    Core core(basicConfig(), 0, &src, nullptr, nullptr);
    core.runInstructions(1000);
    const InstCount total = core.retired();
    core.clearStats();
    EXPECT_EQ(core.stats().instructions, 0u);
    EXPECT_EQ(core.retired(), total);
}

TEST(Core, RunCyclesAdvancesClock)
{
    AluSource src;
    Core core(basicConfig(), 0, &src, nullptr, nullptr);
    core.runCycles(100);
    EXPECT_EQ(core.cycle(), 100u);
    core.runCycles(50);
    EXPECT_EQ(core.cycle(), 150u);
}

TEST(Core, StoresDoNotBlockRetirement)
{
    // Stores issue post-completion; a slow memory shouldn't tank IPC
    // for a store-only stream the way it does for serial loads.
    class StoreSource : public TraceSource
    {
      public:
        TraceRecord
        next() override
        {
            TraceRecord r;
            r.ip = 0x400000;
            r.numStores = 1;
            r.storeAddr[0] = 0x20000000 + n_++ * blockSize;
            return r;
        }
        void reset() override { n_ = 0; }

      private:
        std::uint64_t n_ = 0;
    };

    StoreSource stores;
    FixedLatency slow_mem(500);
    Core core(basicConfig(), 0, &stores, nullptr, &slow_mem);
    core.runInstructions(2000);
    EXPECT_GT(core.stats().ipc(), 1.0);
}

TEST(Core, MlpCapBoundsOutstandingLoads)
{
    // With the cap at K and memory latency L, throughput of an
    // all-load stream cannot exceed K loads per L cycles.
    LoadSource src(false);
    FixedLatency mem(200);
    CoreConfig cfg = basicConfig();
    cfg.maxOutstandingLoads = 4;
    Core core(cfg, 0, &src, nullptr, &mem);
    core.runInstructions(2000);
    // 1 load per instruction -> IPC <= 4/200 * (1 + slack).
    EXPECT_LT(core.stats().ipc(), 4.0 / 200.0 * 1.5);
}

TEST(Core, WiderMlpCapRaisesThroughput)
{
    LoadSource a(false), b(false);
    FixedLatency mem_a(200), mem_b(200);
    CoreConfig narrow = basicConfig(), wide = basicConfig();
    narrow.maxOutstandingLoads = 2;
    wide.maxOutstandingLoads = 16;
    Core cn(narrow, 0, &a, nullptr, &mem_a);
    Core cw(wide, 0, &b, nullptr, &mem_b);
    cn.runInstructions(2000);
    cw.runInstructions(2000);
    EXPECT_GT(cw.stats().ipc(), 3.0 * cn.stats().ipc());
}

TEST(Core, IdStampedOnRequests)
{
    class CoreIdCheck : public MemoryLevel
    {
      public:
        AccessResult
        access(const MemAccess &req) override
        {
            EXPECT_EQ(req.core, 3u);
            return {req.cycle + 1, true};
        }
        const char *levelName() const override { return "check"; }
    };

    LoadSource src(false);
    CoreIdCheck mem;
    Core core(basicConfig(), 3, &src, nullptr, &mem);
    core.runInstructions(100);
}
