/**
 * @file
 * Tests for the DRAM model (dram/dram.hh).
 */

#include <gtest/gtest.h>

#include "expect_error.hh"

#include "dram/dram.hh"

using namespace pinte;

namespace
{

MemAccess
rdAccess(Addr addr, Cycle cycle = 0, CoreId core = 0)
{
    MemAccess r;
    r.addr = addr;
    r.core = core;
    r.type = AccessType::Load;
    r.cycle = cycle;
    return r;
}

DramConfig
cfg()
{
    DramConfig c;
    c.channels = 2;
    c.banksPerChannel = 4;
    c.linesPerRow = 8;
    return c;
}

} // namespace

TEST(Dram, FirstAccessIsRowMiss)
{
    Dram d(cfg());
    d.access(rdAccess(0));
    EXPECT_EQ(d.stats()[0].rowMisses, 1u);
    EXPECT_EQ(d.stats()[0].reads, 1u);
}

TEST(Dram, SecondAccessSameRowIsRowHit)
{
    Dram d(cfg());
    const Cycle r1 = d.access(rdAccess(0, 0)).readyCycle;
    d.access(rdAccess(blockSize * 2, r1)); // same channel/row (lines 0 and 2
                                       // interleave: line 2 -> channel 0)
    EXPECT_EQ(d.stats()[0].rowHits, 1u);
}

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    Dram d(cfg());
    const Cycle t0 = 0;
    const Cycle miss_ready = d.access(rdAccess(0, t0)).readyCycle;
    const Cycle miss_lat = miss_ready - t0;

    const Cycle t1 = miss_ready + 10;
    const Cycle hit_ready = d.access(rdAccess(blockSize * 2, t1)).readyCycle;
    const Cycle hit_lat = hit_ready - t1;

    EXPECT_LT(hit_lat, miss_lat);
}

TEST(Dram, RowConflictIsSlowest)
{
    DramConfig c = cfg();
    c.channels = 1;
    c.banksPerChannel = 1;
    Dram d(c);

    const Cycle t0 = 0;
    const Cycle lat_miss = d.access(rdAccess(0, t0)).readyCycle - t0;

    // Different row, same (only) bank: conflict.
    const Addr far = blockSize * c.linesPerRow * 64;
    const Cycle t1 = 100000;
    const Cycle lat_conf = d.access(rdAccess(far, t1)).readyCycle - t1;
    EXPECT_GT(lat_conf, lat_miss);
    EXPECT_EQ(d.stats()[0].rowConflicts, 1u);
}

TEST(Dram, ConsecutiveLinesUseBothChannels)
{
    Dram d(cfg());
    // Lines 0 and 1 map to different channels, so two simultaneous
    // reads shouldn't serialize on one bus.
    const Cycle a = d.access(rdAccess(0, 0)).readyCycle;
    const Cycle b = d.access(rdAccess(blockSize, 0)).readyCycle;
    EXPECT_EQ(a, b); // identical independent latencies
}

TEST(Dram, BankBusySerializesBackToBackConflicts)
{
    DramConfig c = cfg();
    c.channels = 1;
    c.banksPerChannel = 1;
    Dram d(c);
    const Cycle a = d.access(rdAccess(0, 0)).readyCycle;
    // Issued at cycle 0 too, but the bank is busy until `a`.
    const Addr far = blockSize * c.linesPerRow * 64;
    const Cycle b = d.access(rdAccess(far, 0)).readyCycle;
    EXPECT_GT(b, a);
}

TEST(Dram, BandwidthSaturationGrowsLatency)
{
    DramConfig c = cfg();
    c.channels = 1;
    Dram d(c);
    // Flood one channel with same-cycle requests; later requests must
    // see growing queueing delay through busy-until.
    Cycle first = 0, last = 0;
    for (int i = 0; i < 32; ++i) {
        const Cycle ready =
            d.access(rdAccess(blockSize * 2 * i, 0)).readyCycle;
        if (i == 0)
            first = ready;
        last = ready;
    }
    EXPECT_GT(last, first + 31 * c.transfer - 1);
}

TEST(Dram, WritesCountSeparately)
{
    Dram d(cfg());
    MemAccess wb;
    wb.addr = 0;
    wb.type = AccessType::Writeback;
    d.access(wb);
    EXPECT_EQ(d.stats()[0].writes, 1u);
    EXPECT_EQ(d.stats()[0].reads, 0u);
}

TEST(Dram, PerCoreStatsSeparated)
{
    DramConfig c = cfg();
    c.numCores = 2;
    Dram d(c);
    d.access(rdAccess(0, 0, 0));
    d.access(rdAccess(blockSize, 0, 1));
    EXPECT_EQ(d.stats()[0].reads, 1u);
    EXPECT_EQ(d.stats()[1].reads, 1u);
}

TEST(Dram, AvgReadLatencyTracked)
{
    Dram d(cfg());
    d.access(rdAccess(0, 0));
    EXPECT_GT(d.stats()[0].avgReadLatency(), 0.0);
}

TEST(Dram, RowHitRateAggregates)
{
    Dram d(cfg());
    d.access(rdAccess(0, 0));
    d.access(rdAccess(blockSize * 2, 1000));
    d.access(rdAccess(blockSize * 4, 2000));
    // 1 miss then 2 hits in the same row.
    EXPECT_NEAR(d.rowHitRate(), 2.0 / 3.0, 1e-12);
}

TEST(Dram, ClearStatsResetsCountersOnly)
{
    Dram d(cfg());
    d.access(rdAccess(0, 0));
    d.clearStats();
    EXPECT_EQ(d.stats()[0].reads, 0u);
    // Bank state survives: the next same-row access is still a hit.
    d.access(rdAccess(blockSize * 2, 1000));
    EXPECT_EQ(d.stats()[0].rowHits, 1u);
}

TEST(Dram, HalvedResourcesShrinkGeometry)
{
    const DramConfig full = cfg();
    const DramConfig half = full.halvedResources();
    EXPECT_EQ(half.channels, full.channels / 2);
    EXPECT_EQ(half.banksPerChannel, full.banksPerChannel / 2);
    EXPECT_EQ(half.linesPerRow, full.linesPerRow / 2);
    EXPECT_EQ(half.transfer, full.transfer * 2);
}

TEST(Dram, HalvedResourcesNeverReachZero)
{
    DramConfig c = cfg();
    c.channels = 1;
    c.banksPerChannel = 1;
    c.linesPerRow = 1;
    const DramConfig half = c.halvedResources();
    EXPECT_GE(half.channels, 1u);
    EXPECT_GE(half.banksPerChannel, 1u);
    EXPECT_GE(half.linesPerRow, 1u);
}

TEST(Dram, HalvedResourcesAreSlowerUnderLoad)
{
    DramConfig full_cfg = cfg();
    Dram full(full_cfg);
    Dram half(full_cfg.halvedResources());

    auto flood = [](Dram &d) {
        Cycle last = 0;
        for (int i = 0; i < 64; ++i)
            last = d.access(rdAccess(blockSize * i, 0)).readyCycle;
        return last;
    };
    EXPECT_GT(flood(half), flood(full));
}

TEST(Dram, NonPowerOfTwoGeometryIsFatal)
{
    DramConfig c = cfg();
    c.banksPerChannel = 3;
    EXPECT_ERROR(Dram d(c), ConfigError, "powers of two");
}
