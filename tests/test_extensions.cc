/**
 * @file
 * Tests for the section IV-B extension features: flow ablation knobs
 * (PROMOTE / BLOCK-SELECT), the DRAM-cost complement, PInTE scoping
 * beyond the LLC, and the order-tolerant DRAM slot calendar.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "core/pinte.hh"
#include "dram/dram.hh"
#include "sim/experiment.hh"

using namespace pinte;

namespace
{

CacheConfig
llcConfig()
{
    CacheConfig c;
    c.name = "LLC";
    c.numSets = 8;
    c.assoc = 8;
    c.latency = 10;
    return c;
}

MemAccess
load(Addr addr, Cycle cycle = 0)
{
    MemAccess r;
    r.addr = addr;
    r.type = AccessType::Load;
    r.cycle = cycle;
    return r;
}

void
loopDrive(Cache &c, int n)
{
    for (int i = 0; i < n; ++i)
        c.access(load((static_cast<Addr>(i) % 64) * blockSize,
                      static_cast<Cycle>(i) * 20));
}

ExperimentParams
quick()
{
    ExperimentParams p;
    p.warmup = 5000;
    p.roi = 15000;
    p.sampleEvery = 3000;
    return p;
}

/** @name ExperimentSpec shorthands for the extension shapes below. */
/// @{
RunResult
isolation(const WorkloadSpec &spec, const MachineConfig &machine,
          const ExperimentParams &p)
{
    return ExperimentSpec(machine).workload(spec).params(p).run();
}

RunResult
pinteRun(const WorkloadSpec &spec, double p_induce,
         const MachineConfig &machine, const ExperimentParams &p)
{
    return ExperimentSpec(machine)
        .workload(spec)
        .pinte(p_induce)
        .params(p)
        .run();
}

RunResult
pinteDramComplement(const WorkloadSpec &spec, double p_induce,
                    const MachineConfig &machine,
                    const ExperimentParams &p, double factor)
{
    return ExperimentSpec(machine)
        .workload(spec)
        .pinte(p_induce)
        .dramComplement(factor)
        .params(p)
        .run();
}

RunResult
pinteScoped(const WorkloadSpec &spec, double p_induce, PInteScope s,
            const MachineConfig &machine, const ExperimentParams &p)
{
    return ExperimentSpec(machine)
        .workload(spec)
        .pinte(p_induce)
        .scope(s)
        .params(p)
        .run();
}
/// @}

} // namespace

TEST(FlowAblation, NoPromoteStillInducesComparableContention)
{
    auto run = [](bool promote) {
        Cache c(llcConfig(), nullptr);
        PInteConfig cfg{0.5, 7};
        cfg.promote = promote;
        PInte engine(cfg);
        c.setReplacementHook(&engine);
        loopDrive(c, 6000);
        return engine.stats().invalidations;
    };
    // Regression (inverted from the pre-fix expectation): the StackEnd
    // walk used to re-select the rank-0 way every iteration when
    // PROMOTE was off — ranks never shift without promotion — so the
    // no-promote ablation was starved of >2x its induction volume.
    // The fixed walk climbs ranks itself (see test_pinte.cc
    // NoPromoteWalkInvalidatesDistinctBlocks), so both modes induce
    // heavily; PROMOTE only changes *where* stolen slots end up in the
    // stack, not how many thefts a trigger delivers.
    const std::uint64_t with_promote = run(true);
    const std::uint64_t without_promote = run(false);
    EXPECT_GT(with_promote, 1000u);
    EXPECT_GT(without_promote, 1000u);
    EXPECT_GT(2 * without_promote, with_promote)
        << "no-promote walk starved again (pre-fix signature)";
}

TEST(FlowAblation, NoPromoteRecordsNoPromotions)
{
    Cache c(llcConfig(), nullptr);
    PInteConfig cfg{0.5, 7};
    cfg.promote = false;
    PInte engine(cfg);
    c.setReplacementHook(&engine);
    loopDrive(c, 2000);
    EXPECT_EQ(engine.stats().promotions, 0u);
    EXPECT_GT(engine.stats().invalidations, 0u);
}

TEST(FlowAblation, RandomValidSelectInducesContention)
{
    Cache c(llcConfig(), nullptr);
    PInteConfig cfg{0.3, 11};
    cfg.select = BlockSelectPolicy::RandomValid;
    PInte engine(cfg);
    c.setReplacementHook(&engine);
    loopDrive(c, 4000);
    EXPECT_GT(engine.stats().invalidations, 100u);
    EXPECT_EQ(c.stats().perCore[0].mockedThefts,
              engine.stats().invalidations);
}

TEST(FlowAblation, SelectPolicyNamesDistinct)
{
    EXPECT_STRNE(toString(BlockSelectPolicy::StackEnd),
                 toString(BlockSelectPolicy::RandomValid));
}

TEST(DramComplement, ExtraCyclesSlowEveryAccess)
{
    DramConfig base;
    DramConfig pen = base;
    pen.contentionExtra = 50;
    Dram fast(base), slow(pen);

    MemAccess req;
    req.addr = 0x1000;
    req.type = AccessType::Load;
    req.cycle = 0;
    const Cycle a = fast.access(req).readyCycle;
    const Cycle b = slow.access(req).readyCycle;
    EXPECT_EQ(b, a + 50);
}

TEST(DramComplement, RunnerScalesWithPInduce)
{
    const auto spec = findWorkload("429.mcf");
    const MachineConfig m = MachineConfig::scaled();
    const RunResult base = pinteRun(spec, 0.4, m, quick());
    const RunResult comp =
        pinteDramComplement(spec, 0.4, m, quick(), 60.0);
    // Same induced theft rate, but the complement adds DRAM latency.
    EXPECT_LT(comp.metrics.ipc, base.metrics.ipc);
    EXPECT_GT(comp.metrics.amat, base.metrics.amat);
    EXPECT_NE(comp.contention.find("+dram"), std::string::npos);
}

TEST(DramComplement, ZeroFactorMatchesBase)
{
    const auto spec = findWorkload("435.gromacs");
    const MachineConfig m = MachineConfig::scaled();
    const RunResult base = pinteRun(spec, 0.2, m, quick());
    const RunResult comp =
        pinteDramComplement(spec, 0.2, m, quick(), 0.0);
    EXPECT_EQ(comp.metrics.ipc, base.metrics.ipc);
}

TEST(PInteScope, LlcOnlyCannotTouchCoreBound)
{
    const auto spec = findWorkload("465.tonto");
    const MachineConfig m = MachineConfig::scaled();
    const RunResult iso = isolation(spec, m, quick());
    const RunResult r = pinteScoped(spec, 0.3,
                                       PInteScope::LlcOnly, m, quick());
    EXPECT_GT(weightedIpc(r.metrics.ipc, iso.metrics.ipc), 0.98);
}

TEST(PInteScope, L2ScopeReachesCoreBound)
{
    // L2-scoped engines must hurt a core-bound workload strictly more
    // than the LLC-scoped engine can (the whole point of the scope
    // extension); absolute drop depends on ROI length, so compare
    // scopes rather than fixing a threshold.
    const auto spec = findWorkload("416.gamess");
    const MachineConfig m = MachineConfig::scaled();
    const RunResult llc_only = pinteScoped(
        spec, 0.6, PInteScope::LlcOnly, m, quick());
    const RunResult l2_llc = pinteScoped(
        spec, 0.6, PInteScope::L2AndLlc, m, quick());
    EXPECT_LT(l2_llc.metrics.ipc, 0.995 * llc_only.metrics.ipc);
    EXPECT_GT(l2_llc.metrics.l2InterferenceRate, 0.1);
}

TEST(PInteScope, L2OnlyLeavesLlcHookEmpty)
{
    TraceGenerator gen(findWorkload("450.soplex"));
    MachineConfig m = MachineConfig::scaled();
    m.pinte.pInduce = 0.3;
    m.pinteScope = PInteScope::L2Only;
    System sys(m, {&gen});
    sys.warmup(3000);
    sys.runUntilCore0(10000);
    // No engine on the LLC: LLC mocked thefts must stay zero while the
    // L2 engine fires.
    EXPECT_EQ(sys.llc().stats().perCore[0].mockedThefts, 0u);
    EXPECT_GT(sys.l2(0).stats().perCore[0].mockedThefts, 0u);
}

TEST(PInteScope, EngineCountMatchesScope)
{
    auto count = [](PInteScope scope, unsigned cores) {
        std::vector<std::unique_ptr<TraceGenerator>> gens;
        std::vector<TraceSource *> srcs;
        for (unsigned i = 0; i < cores; ++i) {
            gens.push_back(std::make_unique<TraceGenerator>(
                findWorkload("435.gromacs")));
            srcs.push_back(gens.back().get());
        }
        MachineConfig m = MachineConfig::scaled(cores);
        m.pinte.pInduce = 0.1;
        m.pinteScope = scope;
        System sys(m, srcs);
        return sys.allPinteEngines().size();
    };
    EXPECT_EQ(count(PInteScope::LlcOnly, 1), 1u);
    EXPECT_EQ(count(PInteScope::L2Only, 1), 1u);
    EXPECT_EQ(count(PInteScope::L2AndLlc, 1), 2u);
    EXPECT_EQ(count(PInteScope::L2AndLlc, 2), 3u);
}

TEST(PInteScope, NamesDistinct)
{
    EXPECT_STRNE(toString(PInteScope::LlcOnly),
                 toString(PInteScope::L2Only));
    EXPECT_STRNE(toString(PInteScope::L2Only),
                 toString(PInteScope::L2AndLlc));
}

TEST(SlotCalendar, FirstBookingStartsAtRequest)
{
    SlotCalendar cal(4, 64);
    EXPECT_EQ(cal.book(16, 1), 16u);
}

TEST(SlotCalendar, MidSlotRequestStartsAtRequestTime)
{
    // The booking occupies slot [16, 20) but service never starts
    // before the requested cycle.
    SlotCalendar cal(4, 64);
    EXPECT_EQ(cal.book(18, 1), 18u);
    // The slot is consumed: the next request moves on.
    EXPECT_EQ(cal.book(16, 1), 20u);
}

TEST(SlotCalendar, SecondBookingSameSlotMovesOn)
{
    SlotCalendar cal(4, 64);
    cal.book(16, 1);
    EXPECT_EQ(cal.book(16, 1), 20u);
}

TEST(SlotCalendar, EarlierRequestUnaffectedByFutureBooking)
{
    // The property busy-until scalars lack: booking far in the future
    // must not delay an earlier request.
    SlotCalendar cal(4, 1024);
    cal.book(4000, 1);
    EXPECT_EQ(cal.book(16, 1), 16u);
}

TEST(SlotCalendar, MultiSlotBookingIsContiguous)
{
    SlotCalendar cal(4, 64);
    EXPECT_EQ(cal.book(0, 3), 0u);  // occupies slots 0-2
    EXPECT_EQ(cal.book(0, 1), 12u); // next free slot is 3
}

TEST(SlotCalendar, MultiSlotSkipsPartialGaps)
{
    SlotCalendar cal(4, 64);
    cal.book(8, 1); // slot 2 busy
    // A 3-slot booking at t=0 does not fit in slots 0-1; it must land
    // after slot 2.
    EXPECT_EQ(cal.book(0, 3), 12u);
}

TEST(SlotCalendar, SaturationSerializes)
{
    SlotCalendar cal(2, 256);
    Cycle last = 0;
    for (int i = 0; i < 50; ++i)
        last = cal.book(0, 1);
    EXPECT_EQ(last, 49u * 2);
}
