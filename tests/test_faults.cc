/**
 * @file
 * Failure-model tests: trace validation at open time, per-job
 * quarantine in campaigns, crash-safe artifact writes, deterministic
 * fault injection, the cooperative hang watchdog, and journal-based
 * checkpoint/resume.
 *
 * The PINTE_INJECT_FAULT plan is parsed once per process, so this
 * binary arms exactly one injection ("report-write:2", set from a
 * global constructor before any site is hit) and the injection test
 * is registered first so it owns hits 1..3 of that site.
 */

#include <gtest/gtest.h>

#include "expect_error.hh"

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "sim/options.hh"
#include "sim/runner.hh"
#include "sim/sink.hh"
#include "sim/watchdog.hh"
#include "trace/trace_io.hh"
#include "trace/zoo.hh"

namespace pinte
{
namespace
{

// Latched before main(), and therefore before the first
// faultInjected() call anywhere in this process.
const bool faultEnvArmed = [] {
    ::setenv("PINTE_INJECT_FAULT", "report-write:2", 1);
    return true;
}();

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "pinte_faults_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string s((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    return s;
}

bool
exists(const std::string &path)
{
    std::ifstream in(path);
    return in.good();
}

/** Write `content` through an AtomicFile and commit. */
void
atomicWrite(const std::string &path, const std::string &content)
{
    AtomicFile f(path);
    f.stream() << content;
    f.commit();
}

TEST(FaultInjection, ReportWriteFiresOnSecondCommitOnly)
{
    ASSERT_TRUE(faultEnvArmed);
    const std::string path = tempPath("inject.txt");
    std::remove(path.c_str());

    // Hit 1: passes.
    atomicWrite(path, "first");
    EXPECT_EQ(slurp(path), "first");

    // Hit 2: the armed fault fires after the temp is fully written;
    // the destination must keep its previous content and the temp
    // must not survive the writer.
    EXPECT_ERROR(atomicWrite(path, "second"), SimError,
                 "injected fault: report-write");
    EXPECT_EQ(slurp(path), "first");
    EXPECT_FALSE(exists(path + ".tmp"));

    // Hit 3: a fault fires exactly once, not "from the nth hit on".
    atomicWrite(path, "third");
    EXPECT_EQ(slurp(path), "third");
    std::remove(path.c_str());
}

TEST(AtomicWrite, UncommittedWriterLeavesNothingBehind)
{
    const std::string path = tempPath("uncommitted.txt");
    std::remove(path.c_str());
    {
        AtomicFile f(path);
        f.stream() << "partial content that must never be published";
    }
    EXPECT_FALSE(exists(path));
    EXPECT_FALSE(exists(path + ".tmp"));
}

TEST(AtomicWrite, CommitPublishesExactContentAndRemovesTemp)
{
    const std::string path = tempPath("committed.txt");
    atomicWrite(path, "exact payload\n");
    EXPECT_EQ(slurp(path), "exact payload\n");
    EXPECT_FALSE(exists(path + ".tmp"));
    std::remove(path.c_str());
}

/** A tiny but valid on-disk trace to corrupt in various ways. */
std::string
makeValidTrace(const std::string &name, std::size_t records = 16)
{
    const std::string path = tempPath(name);
    std::vector<TraceRecord> recs(records);
    writeTrace(path, recs);
    return path;
}

// On-disk header layout (trace_io.cc): u64 magic, u32 version,
// u32 record size, u64 count — 24 bytes, then the records.
constexpr long headerBytes = 24;
constexpr long versionOffset = 8;

TEST(TraceFaults, WrongVersionRejectedAtOpen)
{
    const std::string path = makeValidTrace("wrong_version.trc");
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(versionOffset);
        const std::uint32_t bogus = traceVersion + 7;
        f.write(reinterpret_cast<const char *>(&bogus), sizeof(bogus));
    }
    EXPECT_ERROR(FileTraceSource src(path), TraceError,
                 "unsupported trace version");
    std::remove(path.c_str());
}

TEST(TraceFaults, TruncatedDataRejectedAtOpen)
{
    // The header declares 16 records but the file carries fewer
    // bytes: open must fail immediately, not thousands of reads in.
    const std::string path = makeValidTrace("truncated.trc");
    const std::string whole = slurp(path);
    ASSERT_GT(whole.size(), static_cast<std::size_t>(headerBytes));
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(whole.data(),
                static_cast<std::streamsize>(whole.size() - 10));
    }
    EXPECT_ERROR(FileTraceSource src(path), TraceError,
                 "truncated trace");
    std::remove(path.c_str());
}

TEST(TraceFaults, FileShorterThanHeaderRejected)
{
    const std::string path = tempPath("short.trc");
    {
        std::ofstream f(path, std::ios::binary);
        f << "1234";
    }
    EXPECT_ERROR(FileTraceSource src(path), TraceError,
                 "trace read failed (header)");
    std::remove(path.c_str());
}

TEST(TraceFaults, CorruptMagicRejected)
{
    const std::string path = makeValidTrace("corrupt_magic.trc");
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(0);
        const std::uint64_t bogus = 0xdeadbeefdeadbeefull;
        f.write(reinterpret_cast<const char *>(&bogus), sizeof(bogus));
    }
    EXPECT_ERROR(FileTraceSource src(path), TraceError,
                 "not a pinte trace");
    std::remove(path.c_str());
}

TEST(Watchdog, ProgressKeepsAnArmedJobAlive)
{
    JobWatchdog::Scope guard(0.05);
    // Runs well past the limit in wall time, but every heartbeat
    // reports fresh instruction progress, so no stall accrues.
    for (std::uint64_t i = 0; i < 5; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        JobWatchdog::heartbeat(i);
    }
}

TEST(Watchdog, StallRaisesTimeoutError)
{
    JobWatchdog::Scope guard(0.05);
    JobWatchdog::heartbeat(1);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_ERROR(
        while (true) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            JobWatchdog::heartbeat(1); // no progress
        },
        TimeoutError, "no instruction progress");
    const double waited = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    EXPECT_GE(waited, 0.05);
    EXPECT_LT(waited, 5.0);
}

TEST(Watchdog, ZeroTimeoutRejectedAtParse)
{
    // --job-timeout=0 would fire on the first stalled heartbeat, not
    // disable the watchdog; the driver rejects it up front and points
    // at the way to actually disable it.
    EXPECT_ERROR(parseTimeout("--job-timeout", "0"), ConfigError,
                 "must be a positive number of seconds");
    EXPECT_ERROR(parseTimeout("--job-timeout", "0"), ConfigError,
                 "omit the flag to disable");
    EXPECT_ERROR(parseTimeout("--job-timeout", "-3"), ConfigError,
                 "non-negative integer");
    EXPECT_ERROR(parseTimeout("--job-timeout", "1.5"), ConfigError,
                 "non-negative integer");
    EXPECT_EQ(parseTimeout("--job-timeout", "1"), 1u);
    EXPECT_EQ(parseTimeout("--job-timeout", "900"), 900u);
}

TEST(Watchdog, DistinguishesStarvationFromSlowProgress)
{
    // The stall clock measures wall time since the last *observed
    // progress*, not total job runtime: a slow-but-progressing job
    // outlives many limits, while heartbeat starvation (same
    // instruction count over and over) accrues a stall and fires.
    JobWatchdog::Scope guard(0.25);
    JobWatchdog::heartbeat(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    JobWatchdog::heartbeat(2); // progress: stall clock resets
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    // 300ms of runtime exceeds the 250ms limit, but only ~150ms have
    // passed since the last progress — the job survives.
    JobWatchdog::heartbeat(2);
    EXPECT_ERROR(
        while (true) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            JobWatchdog::heartbeat(2); // starved: no new instructions
        },
        TimeoutError, "no instruction progress");
}

TEST(Watchdog, DisarmedHeartbeatIsFree)
{
    JobWatchdog::disarm();
    for (int i = 0; i < 3; ++i)
        JobWatchdog::heartbeat(0); // never throws while disarmed
}

/** Campaign fixture: a P_Induce sweep over one workload. */
ExperimentParams
quickParams()
{
    ExperimentParams p;
    p.warmup = 2000;
    p.roi = 4000;
    p.sampleEvery = 2000;
    return p;
}

std::vector<ExperimentSpec>
sweepSpecs(std::size_t poisoned = ~0ull)
{
    const WorkloadSpec w = findWorkload("450.soplex");
    const std::vector<double> points = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
    std::vector<ExperimentSpec> specs;
    for (std::size_t i = 0; i < points.size(); ++i) {
        MachineConfig machine = MachineConfig::scaled();
        if (i == poisoned)
            machine.llc.numSets = 77; // not a power of two
        ExperimentSpec spec(machine);
        spec.workload(w).params(quickParams());
        if (points[i] > 0.0)
            spec.pinte(points[i]);
        specs.push_back(spec);
    }
    return specs;
}

void
expectSameSimulation(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.contention, b.contention);
    EXPECT_EQ(a.metrics.ipc, b.metrics.ipc);
    EXPECT_EQ(a.metrics.missRate, b.metrics.missRate);
    EXPECT_EQ(a.metrics.amat, b.metrics.amat);
    EXPECT_EQ(a.metrics.llcAccesses, b.metrics.llcAccesses);
    EXPECT_EQ(a.metrics.llcMisses, b.metrics.llcMisses);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i)
        EXPECT_EQ(a.samples[i].ipc, b.samples[i].ipc);
    ASSERT_EQ(a.reuse.size(), b.reuse.size());
    for (std::size_t i = 0; i < a.reuse.size(); ++i)
        EXPECT_EQ(a.reuse.at(i), b.reuse.at(i));
    EXPECT_EQ(a.pinte.triggers, b.pinte.triggers);
    EXPECT_EQ(a.pinte.invalidations, b.pinte.invalidations);
    // cpuSeconds deliberately excluded: it measures the machine, not
    // the simulation.
}

TEST(Quarantine, OnePoisonedCellDoesNotSinkTheCampaign)
{
    const std::size_t poisoned = 3;
    const std::vector<ExperimentSpec> healthy = sweepSpecs();
    const std::vector<ExperimentSpec> specs = sweepSpecs(poisoned);

    // The healthy sweep is the reference the quarantined campaign's
    // surviving cells must match exactly.
    std::vector<RunOutcome> reference;
    for (const ExperimentSpec &s : healthy)
        reference.push_back(s.tryRun());

    for (unsigned jobs : {1u, 4u}) {
        const Runner runner(jobs);
        const std::vector<RunOutcome> outcomes = runner.map(
            specs.size(),
            [&](std::size_t i) { return specs[i].tryRun(); });

        ASSERT_EQ(outcomes.size(), specs.size());
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (i == poisoned) {
                EXPECT_TRUE(outcomes[i].result.failed());
                EXPECT_FALSE(outcomes[i].ok());
                EXPECT_EQ(outcomes[i].result.error.kind, "config");
                EXPECT_NE(outcomes[i].result.error.message.find(
                              "power of 2"),
                          std::string::npos)
                    << outcomes[i].result.error.message;
                // The failed cell stays addressable in reports.
                EXPECT_EQ(outcomes[i].result.workload, "450.soplex");
            } else {
                ASSERT_TRUE(outcomes[i].ok())
                    << outcomes[i].result.error.message;
                expectSameSimulation(outcomes[i].result,
                                     reference[i].result);
            }
        }
    }
}

TEST(Quarantine, RunnerAggregatesEveryUnquarantinedFailure)
{
    // Without tryRun() quarantine, the Runner still refuses to drop
    // failures silently: all of them come back in one MultiJobError.
    try {
        Runner(4).forEach(8, [&](std::size_t i) {
            if (i % 2 == 1)
                throw std::runtime_error("odd job " +
                                         std::to_string(i));
        });
        FAIL() << "expected MultiJobError";
    } catch (const MultiJobError &e) {
        ASSERT_EQ(e.failures().size(), 4u);
        EXPECT_EQ(e.totalJobs(), 8u);
        for (std::size_t k = 0; k < 4; ++k) {
            EXPECT_EQ(e.failures()[k].first, 2 * k + 1);
            EXPECT_EQ(e.failures()[k].second,
                      "odd job " + std::to_string(2 * k + 1));
        }
    }
}

std::string
keyFor(const ExperimentSpec &spec)
{
    return journalKey(spec.machineConfig().fingerprint(),
                      spec.experimentParams(),
                      spec.workloads().front().name,
                      spec.contention());
}

TEST(Journal, InterruptedThenResumedMatchesUninterrupted)
{
    const std::string path = tempPath("resume.jsonl");
    std::remove(path.c_str());

    const std::vector<ExperimentSpec> specs = sweepSpecs();

    // Uninterrupted baseline.
    std::vector<RunResult> baseline;
    for (const ExperimentSpec &s : specs)
        baseline.push_back(s.tryRun().result);

    // "Interrupted" campaign: completes (and journals) only the first
    // three cells before dying.
    {
        RunJournal journal(path);
        for (std::size_t i = 0; i < 3; ++i)
            journal.record(keyFor(specs[i]), baseline[i]);
        EXPECT_EQ(journal.size(), 3u);
    }

    // Resume: journal hits are served without re-simulation, misses
    // run fresh, and the final population matches the baseline
    // field-for-field (cpuSeconds excluded).
    RunJournal journal(path);
    EXPECT_EQ(journal.size(), 3u);
    std::size_t served = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string key = keyFor(specs[i]);
        RunResult r;
        if (const RunResult *hit = journal.find(key)) {
            r = *hit;
            ++served;
        } else {
            r = specs[i].tryRun().result;
            journal.record(key, r);
        }
        expectSameSimulation(r, baseline[i]);
    }
    EXPECT_EQ(served, 3u);
    EXPECT_EQ(journal.size(), specs.size());
    std::remove(path.c_str());
}

TEST(Journal, TornTrailingLineIsSkippedNotFatal)
{
    const std::string path = tempPath("torn.jsonl");
    std::remove(path.c_str());

    const ExperimentSpec spec = sweepSpecs().front();
    const RunResult r = spec.tryRun().result;
    ASSERT_FALSE(r.failed());
    {
        RunJournal journal(path);
        journal.record(keyFor(spec), r);
    }
    {
        // A SIGKILL mid-append leaves a torn final line.
        std::ofstream f(path, std::ios::app | std::ios::binary);
        f << "{\"key\": \"half-writ";
    }
    RunJournal journal(path);
    EXPECT_EQ(journal.size(), 1u);
    const RunResult *hit = journal.find(keyFor(spec));
    ASSERT_NE(hit, nullptr);
    expectSameSimulation(*hit, r);
    std::remove(path.c_str());
}

TEST(Journal, TornTailIsTruncatedBeforeAppend)
{
    const std::string path = tempPath("torn_append.jsonl");
    std::remove(path.c_str());

    const std::vector<ExperimentSpec> specs = sweepSpecs();
    const RunResult first = specs[0].tryRun().result;
    const RunResult second = specs[1].tryRun().result;
    ASSERT_FALSE(first.failed());
    ASSERT_FALSE(second.failed());
    {
        RunJournal journal(path);
        journal.record(keyFor(specs[0]), first);
    }
    {
        // A SIGKILL mid-append leaves a torn, newline-less tail.
        std::ofstream f(path, std::ios::app | std::ios::binary);
        f << "{\"key\": \"half-writ";
    }
    {
        // The reopened journal must truncate the torn tail before
        // appending: without that, the next record glues onto the
        // torn bytes, the combined line parses as garbage, and the
        // record is silently lost on the following reload.
        RunJournal journal(path);
        EXPECT_EQ(journal.size(), 1u);
        journal.record(keyFor(specs[1]), second);
    }
    RunJournal journal(path);
    EXPECT_EQ(journal.size(), 2u);
    const RunResult *hit0 = journal.find(keyFor(specs[0]));
    const RunResult *hit1 = journal.find(keyFor(specs[1]));
    ASSERT_NE(hit0, nullptr);
    ASSERT_NE(hit1, nullptr);
    expectSameSimulation(*hit0, first);
    expectSameSimulation(*hit1, second);
    std::remove(path.c_str());
}

TEST(Journal, FailedRunsAreNeverJournaled)
{
    const std::string path = tempPath("nofail.jsonl");
    std::remove(path.c_str());

    RunResult failed;
    failed.workload = "w";
    failed.contention = "isolation";
    failed.error.kind = "sim";
    failed.error.component = "experiment";
    failed.error.message = "boom";
    {
        RunJournal journal(path);
        journal.record("some-key", failed);
        EXPECT_EQ(journal.size(), 0u);
    }
    RunJournal journal(path);
    // A resumed campaign must retry the failed cell.
    EXPECT_EQ(journal.find("some-key"), nullptr);
    std::remove(path.c_str());
}

/**
 * Fork a writer that opens an AtomicFile on `path`, stages `partial`
 * (flushed to the OS, never committed), signals readiness over a
 * pipe, and parks until the parent SIGKILLs it. Models a campaign
 * worker dying mid-report or mid-checkpoint write.
 */
void
killMidAtomicWrite(const std::string &path, const std::string &partial)
{
    int ready[2];
    ASSERT_EQ(::pipe(ready), 0);
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::close(ready[0]);
        AtomicFile f(path);
        f.stream() << partial;
        f.stream().flush();
        const char byte = 'w';
        if (::write(ready[1], &byte, 1) != 1)
            std::_Exit(9);
        for (;;)
            ::pause(); // hold the temp open until SIGKILL lands
    }
    ::close(ready[1]);
    char byte = 0;
    ASSERT_EQ(::read(ready[0], &byte, 1), 1);
    ::close(ready[0]);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

TEST(CrashDurability, KilledMidReportWriteLeavesNoPartialReport)
{
    // These tests exercise real SIGKILL durability, not the injected
    // report-write fault the suite arms via the environment.
    armFault("");
    const std::string path = tempPath("killed_report.json");
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());

    killMidAtomicWrite(path, "{\"schema_version\": 5, \"runs\": [");
    // The dead writer never reached commit(): nothing was published;
    // only the staging temp holds the torn bytes, so no reader can
    // ever observe a half-written document at the report path.
    EXPECT_FALSE(exists(path));
    EXPECT_TRUE(exists(path + ".tmp"));

    // A rerun reopens the same destination and must publish a
    // complete, valid document over the wreckage — the fresh
    // AtomicFile truncates the stale temp and commit() renames it
    // into place.
    ReportMeta meta;
    meta.tool = "test_faults";
    meta.fingerprint = "fp";
    meta.params = quickParams();
    const ExperimentSpec spec = sweepSpecs().front();
    const RunResult r = spec.tryRun().result;
    ASSERT_FALSE(r.failed());
    {
        Report rep(ReportFormat::Json, path, meta);
        rep->run(r);
        rep.close();
    }
    std::string error;
    const JsonValue doc = parseJson(slurp(path), &error);
    ASSERT_EQ(error, "");
    EXPECT_EQ(doc.at("schema_version").asU64(),
              static_cast<std::uint64_t>(reportSchemaVersion));
    EXPECT_EQ(doc.at("runs").array.size(), 1u);
    EXPECT_FALSE(exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(CrashDurability, KilledMidCheckpointWritePreservesPriorSnapshot)
{
    armFault("");
    const std::string path = tempPath("killed_ckpt.bin");
    std::remove(path.c_str());
    const std::string good = "PNTC good checkpoint payload\n";
    atomicWrite(path, good);

    killMidAtomicWrite(path, good.substr(0, 9));
    // The prior snapshot survives bitwise: a resume sees either the
    // old checkpoint or a new complete one, never a torn hybrid.
    EXPECT_EQ(slurp(path), good);

    // The next successful writer replaces the snapshot and clears the
    // dead writer's staging temp.
    atomicWrite(path, "PNTC newer checkpoint\n");
    EXPECT_EQ(slurp(path), "PNTC newer checkpoint\n");
    EXPECT_FALSE(exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(Watchdog, BlindSpotDetectionWaitsForTheNextHeartbeat)
{
    // The cooperative watchdog only *observes* the stall clock inside
    // heartbeat(): a job wedged in a syscall, a tight non-simulating
    // loop, or foreign-library code never calls it, and so can never
    // time out in thread mode. The stall is charged — and the
    // TimeoutError raised — only at the next heartbeat, however late
    // it arrives. Campaigns that need a hard wall-clock guarantee use
    // the process backend, where the parent enforces the deadline
    // from outside with SIGTERM-then-SIGKILL (sim/worker_proc.hh).
    JobWatchdog::Scope guard(0.05);
    JobWatchdog::heartbeat(1);
    // Wedged for 3x the limit with no heartbeat: nothing can fire.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    // The very next heartbeat pays for the whole stall at once.
    EXPECT_ERROR(JobWatchdog::heartbeat(1), TimeoutError,
                 "no instruction progress");
}

} // namespace
} // namespace pinte
