/**
 * @file
 * Tests for Histogram and bucketSamples (common/histogram.hh).
 */

#include <gtest/gtest.h>

#include "common/histogram.hh"

using namespace pinte;

TEST(Histogram, StartsEmpty)
{
    Histogram h(8);
    EXPECT_EQ(h.size(), 8u);
    EXPECT_EQ(h.total(), 0u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(h.at(i), 0u);
}

TEST(Histogram, AddAccumulates)
{
    Histogram h(4);
    h.add(1);
    h.add(1);
    h.add(2, 5);
    EXPECT_EQ(h.at(1), 2u);
    EXPECT_EQ(h.at(2), 5u);
    EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, OutOfRangeClampsToLastBucket)
{
    Histogram h(4);
    h.add(100);
    EXPECT_EQ(h.at(3), 1u);
    EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, ClearResets)
{
    Histogram h(4);
    h.add(0, 10);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.at(0), 0u);
}

TEST(Histogram, MergeAddsElementwise)
{
    Histogram a(3), b(3);
    a.add(0, 1);
    a.add(2, 2);
    b.add(0, 3);
    b.add(1, 4);
    a.merge(b);
    EXPECT_EQ(a.at(0), 4u);
    EXPECT_EQ(a.at(1), 4u);
    EXPECT_EQ(a.at(2), 2u);
    EXPECT_EQ(a.total(), 10u);
}

TEST(HistogramDeath, MergeSizeMismatchPanics)
{
    Histogram a(3), b(4);
    EXPECT_DEATH(a.merge(b), "mismatch");
}

TEST(Histogram, DistributionSumsToOne)
{
    Histogram h(5);
    h.add(0, 3);
    h.add(4, 7);
    const auto p = h.toDistribution();
    double sum = 0;
    for (double v : p)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_NEAR(p[0], 0.3, 1e-12);
    EXPECT_NEAR(p[4], 0.7, 1e-12);
}

TEST(Histogram, EmptyDistributionIsUniform)
{
    Histogram h(4);
    const auto p = h.toDistribution();
    for (double v : p)
        EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(BucketSamples, BasicBinning)
{
    const Histogram h =
        bucketSamples({0.1, 0.1, 0.9, 0.5}, 0.0, 1.0, 10);
    EXPECT_EQ(h.at(1), 2u);
    EXPECT_EQ(h.at(9), 1u);
    EXPECT_EQ(h.at(5), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(BucketSamples, OutOfRangeClamps)
{
    const Histogram h = bucketSamples({-5.0, 7.0}, 0.0, 1.0, 4);
    EXPECT_EQ(h.at(0), 1u);
    EXPECT_EQ(h.at(3), 1u);
}

TEST(BucketSamples, BoundaryValues)
{
    const Histogram h = bucketSamples({0.0, 1.0}, 0.0, 1.0, 4);
    EXPECT_EQ(h.at(0), 1u);
    EXPECT_EQ(h.at(3), 1u);
}

TEST(BucketSamples, EmptyInput)
{
    const Histogram h = bucketSamples({}, 0.0, 1.0, 4);
    EXPECT_EQ(h.total(), 0u);
}

class HistogramSizeTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(HistogramSizeTest, MassConservedUnderClamping)
{
    Histogram h(GetParam());
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < 100; ++i) {
        h.add(i, i + 1);
        expected += i + 1;
    }
    EXPECT_EQ(h.total(), expected);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < h.size(); ++i)
        sum += h.at(i);
    EXPECT_EQ(sum, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HistogramSizeTest,
                         ::testing::Values(1, 2, 16, 64, 1000));
