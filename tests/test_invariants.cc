/**
 * @file
 * Paranoid-mode tests: clean machines audit clean across every
 * configuration family, injected corruptions (replacement-stack
 * duplication, stat skew) are detected as InvariantError with
 * set/way context — both on demand and by the periodic sweep — and
 * an invariant violation quarantines a campaign cell like any other
 * job fault.
 *
 * Fault sites are re-armed programmatically with armFault() because
 * the PINTE_INJECT_FAULT plan is parsed once per process and this
 * binary needs several different sites.
 */

#include <gtest/gtest.h>

#include "expect_error.hh"

#include <string>

#include "common/fault.hh"
#include "common/invariant.hh"
#include "sim/experiment.hh"
#include "sim/machine.hh"
#include "sim/options.hh"
#include "trace/generator.hh"
#include "trace/zoo.hh"

namespace pinte
{
namespace
{

/** Enable paranoid mode for one test; restores "off, disarmed". */
struct ParanoidScope
{
    explicit ParanoidScope(std::uint32_t n = Paranoid::defaultInterval)
        : prior_(Paranoid::interval())
    {
        Paranoid::enable(n);
    }
    ~ParanoidScope()
    {
        // Restore the ambient interval (nonzero in a
        // -DPINTE_PARANOID=ON tree) rather than forcing off.
        Paranoid::enable(prior_);
        armFault("");
    }

  private:
    std::uint32_t prior_;
};

ExperimentParams
quickParams()
{
    ExperimentParams p;
    p.warmup = 2000;
    p.roi = 4000;
    p.sampleEvery = 2000;
    return p;
}

/** Warm up, run, and audit a machine under periodic paranoid sweeps. */
void
runAndAudit(MachineConfig machine)
{
    ParanoidScope paranoid(1024);
    TraceGenerator gen(findWorkload("450.soplex"));
    System sys(machine, {&gen});
    sys.warmup(2000);
    sys.runUntilCore0(6000);
    sys.audit();
    sys.auditStats();
}

TEST(InvariantError, CarriesComponentAndLocation)
{
    try {
        invariantFail("cache:test", "broken thing", 3, 5);
        FAIL() << "invariantFail returned";
    } catch (const InvariantError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Invariant);
        EXPECT_STREQ(toString(e.kind()), "invariant");
        EXPECT_EQ(e.component(), "cache:test");
        EXPECT_EQ(e.set(), 3);
        EXPECT_EQ(e.way(), 5);
        EXPECT_NE(std::string(e.what()).find(
                      "invariant violated: broken thing [set 3, way 5]"),
                  std::string::npos)
            << e.what();
    }
}

TEST(InvariantError, MachineWideChecksHaveNoLocation)
{
    try {
        invariantFail("stats", "totals diverged");
        FAIL() << "invariantFail returned";
    } catch (const InvariantError &e) {
        EXPECT_EQ(e.set(), -1);
        EXPECT_EQ(e.way(), -1);
        EXPECT_EQ(std::string(e.what()).find("[set"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Paranoid, TogglesAndReportsInterval)
{
    // Ambient state is build-dependent: off in a default build, the
    // compiled default in a -DPINTE_PARANOID=ON tree. Save and restore
    // it so this test is valid in both.
    const std::uint32_t ambient = Paranoid::interval();
    Paranoid::enable();
    EXPECT_TRUE(Paranoid::on());
    EXPECT_EQ(Paranoid::interval(), Paranoid::defaultInterval);
    Paranoid::enable(128);
    EXPECT_EQ(Paranoid::interval(), 128u);
    Paranoid::disable();
    EXPECT_FALSE(Paranoid::on());
    EXPECT_EQ(Paranoid::interval(), 0u);
    Paranoid::enable(ambient);
}

TEST(Paranoid, IntervalFlagParsing)
{
    EXPECT_EQ(parseParanoidInterval("--paranoid", ""),
              Paranoid::defaultInterval);
    EXPECT_EQ(parseParanoidInterval("--paranoid", "1"),
              Paranoid::defaultInterval);
    EXPECT_EQ(parseParanoidInterval("--paranoid", "512"), 512u);
    EXPECT_ERROR(parseParanoidInterval("--paranoid", "0"), ConfigError,
                 "positive cycle interval");
    EXPECT_ERROR(parseParanoidInterval("--paranoid", "every-so-often"),
                 ConfigError, "non-negative integer");
}

// --- Clean machines audit clean, configuration by configuration. ---

TEST(CleanAudit, Isolation)
{
    runAndAudit(MachineConfig::scaled());
}

TEST(CleanAudit, PInteAtLlc)
{
    MachineConfig m = MachineConfig::scaled();
    m.pinte.pInduce = 0.3;
    runAndAudit(m);
}

TEST(CleanAudit, PInteAtBothLevels)
{
    MachineConfig m = MachineConfig::scaled();
    m.pinte.pInduce = 0.3;
    m.pinteScope = PInteScope::L2AndLlc;
    runAndAudit(m);
}

TEST(CleanAudit, ExclusiveLlc)
{
    MachineConfig m = MachineConfig::scaled();
    m.llc.inclusion = InclusionPolicy::Exclusive;
    runAndAudit(m);
}

TEST(CleanAudit, InclusiveLlc)
{
    MachineConfig m = MachineConfig::scaled();
    m.llc.inclusion = InclusionPolicy::Inclusive;
    runAndAudit(m);
}

TEST(CleanAudit, InclusiveLlcWithInducedThefts)
{
    // Induced thefts deliberately skip back-invalidation (the paper's
    // Fig 11 interference mechanism), so a PInTE run on an inclusive
    // LLC must not trip the inclusion audit.
    MachineConfig m = MachineConfig::scaled();
    m.llc.inclusion = InclusionPolicy::Inclusive;
    m.pinte.pInduce = 0.5;
    runAndAudit(m);
}

TEST(CleanAudit, LhdLlcWithInducedThefts)
{
    // The learned policy keeps its own liveness/class/age state; a
    // PInTE run over it must keep ranks a valid permutation and the
    // per-slot state within bounds (LhdPolicy::auditSet) at every
    // paranoid sweep and at end of run.
    MachineConfig m = MachineConfig::scaled();
    m.llc.replacement = parseReplacement("lhd");
    m.pinte.pInduce = 0.4;
    runAndAudit(m);
}

TEST(CleanAudit, PairSharingTheLlc)
{
    ParanoidScope paranoid(1024);
    MachineConfig m = MachineConfig::scaled();
    m.numCores = 2;
    WorkloadSpec peer = findWorkload("470.lbm");
    peer.dataBase += 0x800000000ull;
    peer.codeBase += 0x40000000ull;
    TraceGenerator ga(findWorkload("450.soplex")), gb(peer);
    System sys(m, {&ga, &gb});
    sys.warmup(2000);
    sys.runUntilCore0(6000);
    sys.audit();
    sys.auditStats();
}

// --- Injected corruptions are detected with precise context. ---

TEST(CorruptionDetection, DuplicateTagCarriesSetAndWay)
{
    ParanoidScope paranoid;
    armFault("stack-corrupt:1");
    MachineConfig m = MachineConfig::scaled();
    TraceGenerator gen(findWorkload("450.soplex"));
    System sys(m, {&gen});
    // The site fires on the first demand fill (a handful of cycles
    // in); keep the window short so the cloned block cannot be
    // naturally evicted before the audit looks at it.
    bool caught = false;
    try {
        sys.runQuantum(32);
        sys.audit();
    } catch (const InvariantError &e) {
        caught = true;
        EXPECT_EQ(std::string(e.component()).rfind("cache:", 0), 0u)
            << e.component();
        EXPECT_GE(e.set(), 0);
        EXPECT_GE(e.way(), 0);
        EXPECT_NE(std::string(e.what()).find("duplicate tag"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_TRUE(caught) << "corrupted stack passed the audit";
}

TEST(CorruptionDetection, DuplicateTagCaughtByPeriodicSweep)
{
    ParanoidScope paranoid(256);
    armFault("stack-corrupt:1");
    MachineConfig m = MachineConfig::scaled();
    TraceGenerator gen(findWorkload("450.soplex"));
    System sys(m, {&gen});
    // With a 256-cycle interval the first quantum already crosses the
    // audit boundary: detection within one sweep of the corruption.
    EXPECT_ERROR(
        for (int i = 0; i < 8; ++i) sys.runQuantum(512),
        InvariantError, "duplicate tag");
}

TEST(CorruptionDetection, StatSkewBreaksConservation)
{
    ParanoidScope paranoid;
    armFault("stat-skew:1");
    MachineConfig m = MachineConfig::scaled();
    TraceGenerator gen(findWorkload("450.soplex"));
    System sys(m, {&gen});
    // The skew site fires on the first non-merged *hit*, which needs
    // a fill to complete first — run well past the cold-start misses.
    bool caught = false;
    try {
        sys.runQuantum(2048);
        sys.audit();
        sys.auditStats();
    } catch (const InvariantError &e) {
        caught = true;
        EXPECT_NE(std::string(e.what()).find("!= accesses"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_TRUE(caught) << "skewed hit counter passed the audits";
}

TEST(CorruptionDetection, StatSkewCaughtByPeriodicSweep)
{
    ParanoidScope paranoid(256);
    armFault("stat-skew:1");
    MachineConfig m = MachineConfig::scaled();
    TraceGenerator gen(findWorkload("450.soplex"));
    System sys(m, {&gen});
    EXPECT_ERROR(
        for (int i = 0; i < 8; ++i) sys.runQuantum(512),
        InvariantError, "!= accesses");
}

TEST(CorruptionDetection, InvariantErrorQuarantinesTheCell)
{
    // End-to-end: a violation inside a campaign job surfaces as a
    // failed-run cell with kind "invariant", not a dead campaign.
    ParanoidScope paranoid(256);
    armFault("stat-skew:1");
    ExperimentSpec spec{MachineConfig::scaled()};
    // No warmup: the fault would fire there and clearAllStats() would
    // erase the skew before the region of interest begins.
    ExperimentParams params = quickParams();
    params.warmup = 0;
    spec.workload(findWorkload("450.soplex")).params(params);
    const RunOutcome o = spec.tryRun();
    ASSERT_TRUE(o.result.failed());
    EXPECT_EQ(o.result.error.kind, "invariant");
    EXPECT_NE(o.result.error.message.find("invariant violated"),
              std::string::npos)
        << o.result.error.message;
}

TEST(CorruptionDetection, CleanRunAfterDisarmIsUnaffected)
{
    // The guards' teardown disarmed the fault plan and restored the
    // ambient paranoid interval. Force the mode off for this run (a
    // paranoid build tree leaves it on ambiently) and check a fresh
    // simulation neither faults nor audits.
    const std::uint32_t ambient = Paranoid::interval();
    Paranoid::disable();
    ASSERT_FALSE(Paranoid::on());
    MachineConfig m = MachineConfig::scaled();
    TraceGenerator gen(findWorkload("450.soplex"));
    System sys(m, {&gen});
    sys.runUntilCore0(2000);
    sys.audit(); // explicit audits still work with the mode off
    sys.auditStats();
    Paranoid::enable(ambient);
}

} // namespace
} // namespace pinte
