/**
 * @file
 * Tests for KL divergence (common/kl_divergence.hh) — eq. 5.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.hh"
#include "common/kl_divergence.hh"
#include "common/rng.hh"

using namespace pinte;

TEST(KlDivergence, IdenticalDistributionsYieldZero)
{
    const std::vector<double> p = {0.25, 0.25, 0.25, 0.25};
    EXPECT_NEAR(klDivergenceBits(p, p), 0.0, 1e-9);
}

TEST(KlDivergence, NonNegative)
{
    Rng r(1);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<double> p(8), q(8);
        double ps = 0, qs = 0;
        for (int i = 0; i < 8; ++i) {
            p[i] = r.drawUnit();
            q[i] = r.drawUnit();
            ps += p[i];
            qs += q[i];
        }
        for (int i = 0; i < 8; ++i) {
            p[i] /= ps;
            q[i] /= qs;
        }
        EXPECT_GE(klDivergenceBits(p, q), 0.0);
    }
}

TEST(KlDivergence, KnownValueTwoBuckets)
{
    // D(p||q) = 0.75*log2(0.75/0.5) + 0.25*log2(0.25/0.5)
    const std::vector<double> p = {0.75, 0.25};
    const std::vector<double> q = {0.5, 0.5};
    const double expected =
        0.75 * std::log2(0.75 / 0.5) + 0.25 * std::log2(0.25 / 0.5);
    EXPECT_NEAR(klDivergenceBits(p, q), expected, 1e-6);
}

TEST(KlDivergence, OneBitForCertainVsCoin)
{
    // A deterministic outcome against a fair coin costs exactly 1 bit.
    const std::vector<double> p = {1.0, 0.0};
    const std::vector<double> q = {0.5, 0.5};
    EXPECT_NEAR(klDivergenceBits(p, q), 1.0, 1e-4);
}

TEST(KlDivergence, AsymmetricInGeneral)
{
    const std::vector<double> p = {0.9, 0.1};
    const std::vector<double> q = {0.5, 0.5};
    EXPECT_NE(klDivergenceBits(p, q), klDivergenceBits(q, p));
}

TEST(KlDivergence, SmoothingHandlesZeroReferenceBuckets)
{
    const std::vector<double> p = {0.5, 0.5};
    const std::vector<double> q = {1.0, 0.0};
    const double d = klDivergenceBits(p, q);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GT(d, 1.0); // should be large but finite
}

TEST(KlDivergence, EmptyDistributions)
{
    EXPECT_EQ(klDivergenceBits(std::vector<double>{},
                               std::vector<double>{}),
              0.0);
}

TEST(KlDivergenceDeath, SizeMismatchPanics)
{
    const std::vector<double> p = {1.0};
    const std::vector<double> q = {0.5, 0.5};
    EXPECT_DEATH(klDivergenceBits(p, q), "mismatch");
}

TEST(KlDivergence, HistogramOverloadMatchesVector)
{
    Histogram hp(4), hq(4);
    hp.add(0, 10);
    hp.add(1, 30);
    hq.add(0, 20);
    hq.add(1, 20);
    const double via_hist = klDivergenceBits(hp, hq);
    const double via_vec =
        klDivergenceBits(hp.toDistribution(), hq.toDistribution());
    EXPECT_NEAR(via_hist, via_vec, 1e-12);
}

TEST(KlDivergence, MoreDivergentPairScoresHigher)
{
    const std::vector<double> q = {0.25, 0.25, 0.25, 0.25};
    const std::vector<double> close = {0.3, 0.25, 0.25, 0.2};
    const std::vector<double> far = {0.7, 0.1, 0.1, 0.1};
    EXPECT_LT(klDivergenceBits(close, q), klDivergenceBits(far, q));
}

TEST(KlDivergence, ConvergesWithSampleSize)
{
    // Two histograms sampled from the same distribution should drift
    // toward zero divergence as counts grow.
    Rng r(7);
    Histogram small_p(8), small_q(8), big_p(8), big_q(8);
    for (int i = 0; i < 100; ++i) {
        small_p.add(r.drawRange(8));
        small_q.add(r.drawRange(8));
    }
    for (int i = 0; i < 100000; ++i) {
        big_p.add(r.drawRange(8));
        big_q.add(r.drawRange(8));
    }
    EXPECT_LT(klDivergenceBits(big_p, big_q),
              klDivergenceBits(small_p, small_q));
    EXPECT_LT(klDivergenceBits(big_p, big_q), 0.01);
}
