/**
 * @file
 * Observability-layer tests (schema v3): the StatSampler's
 * conservation identity (per-interval deltas sum to the end-of-run
 * counters, exactly), log2 histogram bucket accounting, the Chrome
 * event-trace backend, and the sampling-off guarantee that a v3
 * report carries exactly the v2 fields.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/json.hh"
#include "common/stats.hh"
#include "common/trace_events.hh"
#include "sim/experiment.hh"
#include "sim/sink.hh"

namespace pinte
{
namespace
{

// ---------------------------------------------------------------------
// Log2Histogram
// ---------------------------------------------------------------------

TEST(Log2Histogram, BucketMapping)
{
    Log2Histogram h;
    h.add(0); // bucket 0: the value zero
    h.add(1); // bucket 1: [1, 2)
    h.add(2); // bucket 2: [2, 4)
    h.add(3);
    h.add(4); // bucket 3: [4, 8)
    h.add(7);
    h.add(8); // bucket 4: [8, 16)

    const std::vector<std::uint64_t> want{1, 1, 2, 2, 1};
    EXPECT_EQ(h.counts(), want);
    EXPECT_EQ(h.total(), 7u);
}

TEST(Log2Histogram, BucketCountsSumToTotal)
{
    // No clamping anywhere: every observation lands in some bucket,
    // so the bucket populations always sum to the observation count —
    // the invariant check_report.py enforces on exported histograms.
    Log2Histogram h;
    std::uint64_t n = 0;
    for (std::uint64_t v = 0; v < 3000; v += 7, ++n)
        h.add(v * v); // spreads across ~24 buckets
    EXPECT_EQ(h.total(), n);
    std::uint64_t sum = 0;
    for (const std::uint64_t c : h.counts())
        sum += c;
    EXPECT_EQ(sum, h.total());
}

TEST(Log2Histogram, BucketLowBounds)
{
    EXPECT_EQ(Log2Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketLow(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketLow(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketLow(3), 4u);
    EXPECT_EQ(Log2Histogram::bucketLow(10), 512u);
}

// ---------------------------------------------------------------------
// StatSampler conservation
// ---------------------------------------------------------------------

/**
 * The tentpole identity: driving a live System with sampling on, every
 * counter's column of interval deltas must sum exactly to the
 * counter's end-of-run value. finish() closes the trailing partial
 * interval, so the identity holds regardless of how the ROI length
 * divides the period.
 */
TEST(StatSampler, DeltasSumToFinalCounters)
{
    MachineConfig machine = MachineConfig::scaled();
    machine.pinte.pInduce = 0.25;
    TraceGenerator gen(findWorkload("450.soplex"));
    System sys(machine, {&gen});
    sys.warmup(2000);
    // 257 deliberately does not divide the run-quantum cadence, so
    // interval boundaries land mid-quantum and the final interval is
    // partial.
    sys.startSampling(257);
    sys.runUntilCore0(6000);
    sys.finishSampling();

    const StatTimeseries &ts = sys.timeseries();
    ASSERT_FALSE(ts.empty());
    EXPECT_EQ(ts.intervalCycles, 257u);
    ASSERT_FALSE(ts.paths.empty());
    ASSERT_EQ(ts.cycles.size(), ts.deltas.size());

    // Row stamps strictly increase and every row spans all paths.
    for (std::size_t r = 0; r < ts.cycles.size(); ++r) {
        if (r) {
            EXPECT_LT(ts.cycles[r - 1], ts.cycles[r]);
        }
        ASSERT_EQ(ts.deltas[r].size(), ts.paths.size());
    }

    // Conservation, per path, against the registry's live value.
    std::uint64_t activity = 0;
    for (std::size_t i = 0; i < ts.paths.size(); ++i) {
        std::uint64_t sum = 0;
        for (const auto &row : ts.deltas)
            sum += row[i];
        EXPECT_EQ(sum, sys.registry().counter(ts.paths[i]))
            << "column sum of " << ts.paths[i]
            << " diverged from the final counter";
        activity += sum;
    }
    EXPECT_GT(activity, 0u) << "sampled run recorded no activity";

    // Gauges (non-monotone counters) are excluded: their unsigned
    // deltas would wrap when the gauge shrinks.
    for (const auto &p : ts.paths)
        EXPECT_EQ(p.find("occupancy_blocks"), std::string::npos) << p;
}

TEST(StatSampler, ExperimentCarriesSeriesAndHistograms)
{
    ExperimentParams params;
    params.warmup = 2000;
    params.roi = 6000;
    params.sampleIntervalCycles = 512;
    const RunResult r = ExperimentSpec(MachineConfig::scaled())
                            .workload(findWorkload("429.mcf"))
                            .pinte(0.3)
                            .params(params)
                            .run();

    ASSERT_FALSE(r.timeseries.empty());
    EXPECT_EQ(r.timeseries.intervalCycles, 512u);

    // The machine's log2 histograms ride along, each conserving its
    // observation count. A short mcf ROI always records LLC misses,
    // so at least one histogram must be populated.
    ASSERT_FALSE(r.histograms.empty());
    std::uint64_t populated = 0;
    for (const HistogramData &h : r.histograms) {
        std::uint64_t sum = 0;
        for (const std::uint64_t c : h.counts)
            sum += c;
        EXPECT_EQ(sum, h.total) << h.path;
        if (h.total)
            ++populated;
    }
    EXPECT_GT(populated, 0u);
}

// ---------------------------------------------------------------------
// Event tracing
// ---------------------------------------------------------------------

TEST(TraceEventsTest, DisarmedIsNoOp)
{
    ASSERT_FALSE(TraceEvents::on());
    const std::size_t before = TraceEvents::eventCount();
    {
        TraceEvents::Span span("test", "ignored");
        if (TraceEvents::on())
            TraceEvents::mark("test", "ignored", 1);
    }
    EXPECT_EQ(TraceEvents::eventCount(), before);
}

TEST(TraceEventsTest, WriteProducesValidChromeJson)
{
    const std::string path =
        ::testing::TempDir() + "/pinte_trace_test.json";

    TraceEvents::arm();
    {
        TraceEvents::Span span("test", "phase one");
        TraceEvents::mark("test", "tick", 42);
    }
    ASSERT_EQ(TraceEvents::eventCount(), 2u);
    TraceEvents::write(path);
    EXPECT_FALSE(TraceEvents::on()) << "write() must disarm";

    std::ifstream in(path);
    ASSERT_TRUE(in) << "trace file not written: " << path;
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string error;
    const JsonValue doc = parseJson(buf.str(), &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    EXPECT_EQ(doc.at("droppedEvents").asU64(), 0u);

    const auto &events = doc.at("traceEvents").array;
    ASSERT_EQ(events.size(), 2u);
    // Events are buffered in completion order: the instant mark fires
    // inside the span, so it lands first.
    const JsonValue &mark = events[0];
    EXPECT_EQ(mark.at("ph").asString(), "i");
    EXPECT_EQ(mark.at("name").asString(), "tick");
    EXPECT_EQ(mark.at("cat").asString(), "test");
    EXPECT_EQ(mark.at("args").at("value").asU64(), 42u);
    const JsonValue &span = events[1];
    EXPECT_EQ(span.at("ph").asString(), "X");
    EXPECT_EQ(span.at("name").asString(), "phase one");
    EXPECT_LE(span.at("ts").asU64(),
              span.at("ts").asU64() + span.at("dur").asU64());
}

// ---------------------------------------------------------------------
// Sampling-off v3 documents carry exactly the v2 fields
// ---------------------------------------------------------------------

std::string
emitReport(const RunResult &r, std::uint64_t sampleInterval)
{
    ExperimentParams params;
    params.warmup = 2000;
    params.roi = 6000;
    params.sampleIntervalCycles = sampleInterval;
    std::ostringstream os;
    {
        JsonSink sink(os, {"test_observability", "fp", params});
        sink.run(r);
        sink.close();
    }
    return os.str();
}

TEST(SchemaV3, SamplingOffMatchesV2Fields)
{
    ExperimentParams params;
    params.warmup = 2000;
    params.roi = 6000;
    const auto spec = [&](std::uint64_t interval) {
        ExperimentParams p = params;
        p.sampleIntervalCycles = interval;
        return ExperimentSpec(MachineConfig::scaled())
            .workload(findWorkload("450.soplex"))
            .pinte(0.2)
            .params(p);
    };
    const RunResult off = spec(0).run();
    const RunResult on = spec(512).run();

    // Sampling is pure observation: it must not perturb the simulated
    // machine, so every aggregate metric is bit-identical.
    EXPECT_EQ(off.metrics.ipc, on.metrics.ipc);
    EXPECT_EQ(off.metrics.missRate, on.metrics.missRate);
    EXPECT_EQ(off.metrics.amat, on.metrics.amat);
    EXPECT_EQ(off.metrics.interferenceRate, on.metrics.interferenceRate);
    EXPECT_EQ(off.metrics.llcAccesses, on.metrics.llcAccesses);
    EXPECT_EQ(off.metrics.llcMisses, on.metrics.llcMisses);
    EXPECT_TRUE(off.timeseries.empty());
    ASSERT_FALSE(on.timeseries.empty());

    // The sampling-off document must not mention sampling at all: no
    // timeseries section, no sample_interval config key.
    const std::string doc_off = emitReport(off, 0);
    EXPECT_EQ(doc_off.find("timeseries"), std::string::npos);
    EXPECT_EQ(doc_off.find("sample_interval"), std::string::npos);
    const std::string doc_on = emitReport(on, 512);
    EXPECT_NE(doc_on.find("timeseries"), std::string::npos);
    EXPECT_NE(doc_on.find("sample_interval"), std::string::npos);

    // Field-for-field v2 equivalence: strip the v3 payloads from the
    // sampled run and both runs serialize identically.
    RunResult stripped = on;
    stripped.timeseries = StatTimeseries{};
    stripped.histograms.clear();
    RunResult base = off;
    base.histograms.clear();
    // cpuSeconds is wall-clock-dependent; normalize it.
    stripped.cpuSeconds = base.cpuSeconds = 0.0;
    EXPECT_EQ(emitReport(base, 0), emitReport(stripped, 0));
}

} // namespace
} // namespace pinte
