/**
 * @file
 * Tests for the string option parsers backing the pintesim CLI.
 */

#include <gtest/gtest.h>

#include "expect_error.hh"

#include <set>
#include <string>

#include "sim/options.hh"

using namespace pinte;

TEST(ParseReplacement, AcceptsAllNames)
{
    EXPECT_EQ(parseReplacement("lru"), ReplacementKind::Lru);
    EXPECT_EQ(parseReplacement("LRU"), ReplacementKind::Lru);
    EXPECT_EQ(parseReplacement("plru"), ReplacementKind::PseudoLru);
    EXPECT_EQ(parseReplacement("pseudo-lru"),
              ReplacementKind::PseudoLru);
    EXPECT_EQ(parseReplacement("nmru"), ReplacementKind::Nmru);
    EXPECT_EQ(parseReplacement("rrip"), ReplacementKind::Rrip);
    EXPECT_EQ(parseReplacement("srrip"), ReplacementKind::Rrip);
    EXPECT_EQ(parseReplacement("random"), ReplacementKind::Random);
}

TEST(ParseReplacement, AcceptsNewPolicies)
{
    EXPECT_EQ(parseReplacement("drrip"), ReplacementKind::Drrip);
    EXPECT_EQ(parseReplacement("lhd"), ReplacementKind::Lhd);
    EXPECT_EQ(parseReplacement("LHD"), ReplacementKind::Lhd);
}

TEST(ParseReplacement, RejectsUnknown)
{
    EXPECT_ERROR(parseReplacement("mru"), ConfigError, "unknown replacement");
}

TEST(ParseReplacement, ErrorListsEveryValidValue)
{
    // The valid-values list in the error message derives from the CLI
    // table; every canonical spelling must appear.
    try {
        parseReplacement("bogus");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string msg = e.what();
        for (const ReplacementCliEntry &entry : replacementCliTable())
            EXPECT_NE(msg.find(entry.canonical), std::string::npos)
                << "missing " << entry.canonical << " in: " << msg;
    }
}

TEST(ReplacementRegistry, EveryKindRoundTripsThroughEveryTable)
{
    // Exhaustiveness guard: a new ReplacementKind must register in the
    // CLI table, the factory, toString and the policy's own name() in
    // lockstep. The static_assert in options.cc forces the table edit;
    // this test proves the registrations agree with each other.
    const auto &table = replacementCliTable();
    ASSERT_EQ(table.size(), numReplacementKinds);
    std::set<ReplacementKind> kinds_seen;
    std::set<std::string> spellings_seen;
    for (const ReplacementCliEntry &e : table) {
        EXPECT_TRUE(kinds_seen.insert(e.kind).second)
            << "duplicate table entry for " << toString(e.kind);
        ASSERT_NE(e.canonical, nullptr);
        EXPECT_TRUE(spellings_seen.insert(e.canonical).second);
        EXPECT_EQ(parseReplacement(e.canonical), e.kind);
        EXPECT_STREQ(replacementCliName(e.kind), e.canonical);
        if (e.alias) {
            EXPECT_TRUE(spellings_seen.insert(e.alias).second);
            EXPECT_EQ(parseReplacement(e.alias), e.kind);
        }
        // toString must be a real name, and the factory-built policy
        // must report it (PseudoLru needs power-of-two assoc, so the
        // shared geometry here is 4x4).
        EXPECT_STRNE(toString(e.kind), "unknown");
        const auto p = makeReplacementPolicy(e.kind, 4, 4, 1);
        ASSERT_NE(p, nullptr);
        EXPECT_STREQ(p->name(), toString(e.kind));
    }
    EXPECT_EQ(kinds_seen.size(), numReplacementKinds);
}

TEST(ParseReplacementList, SplitsCommaSeparatedPolicies)
{
    const auto v = parseReplacementList("lru,rrip,drrip,lhd");
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], ReplacementKind::Lru);
    EXPECT_EQ(v[1], ReplacementKind::Rrip);
    EXPECT_EQ(v[2], ReplacementKind::Drrip);
    EXPECT_EQ(v[3], ReplacementKind::Lhd);
}

TEST(ParseReplacementList, SingleItemAndAliases)
{
    const auto v = parseReplacementList("srrip");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], ReplacementKind::Rrip);
}

TEST(ParseReplacementList, RejectsEmptyItemsAndDuplicates)
{
    EXPECT_ERROR(parseReplacementList(""), ConfigError, "empty policy");
    EXPECT_ERROR(parseReplacementList("lru,,lhd"), ConfigError,
                 "empty policy");
    EXPECT_ERROR(parseReplacementList("lru,lhd,"), ConfigError,
                 "empty policy");
    EXPECT_ERROR(parseReplacementList("lru,lru"), ConfigError,
                 "duplicate policy");
    // An alias duplicates its canonical spelling: same kind.
    EXPECT_ERROR(parseReplacementList("rrip,srrip"), ConfigError,
                 "duplicate policy");
    EXPECT_ERROR(parseReplacementList("lru,bogus"), ConfigError,
                 "unknown replacement");
}

TEST(ParseInclusion, AcceptsAllNames)
{
    EXPECT_EQ(parseInclusion("non"), InclusionPolicy::NonInclusive);
    EXPECT_EQ(parseInclusion("no"), InclusionPolicy::NonInclusive);
    EXPECT_EQ(parseInclusion("non-inclusive"),
              InclusionPolicy::NonInclusive);
    EXPECT_EQ(parseInclusion("inclusive"), InclusionPolicy::Inclusive);
    EXPECT_EQ(parseInclusion("in"), InclusionPolicy::Inclusive);
    EXPECT_EQ(parseInclusion("exclusive"), InclusionPolicy::Exclusive);
    EXPECT_EQ(parseInclusion("EX"), InclusionPolicy::Exclusive);
}

TEST(ParseInclusion, RejectsUnknown)
{
    EXPECT_ERROR(parseInclusion("semi"), ConfigError, "unknown inclusion");
}

TEST(ParsePredictor, AcceptsAllNames)
{
    EXPECT_EQ(parsePredictor("bimodal"), BranchPredictorKind::Bimodal);
    EXPECT_EQ(parsePredictor("gshare"), BranchPredictorKind::GShare);
    EXPECT_EQ(parsePredictor("perceptron"),
              BranchPredictorKind::Perceptron);
    EXPECT_EQ(parsePredictor("hashed"),
              BranchPredictorKind::HashedPerceptron);
    EXPECT_EQ(parsePredictor("hashed-perceptron"),
              BranchPredictorKind::HashedPerceptron);
    EXPECT_EQ(parsePredictor("always-taken"),
              BranchPredictorKind::AlwaysTaken);
}

TEST(ParsePredictor, RejectsUnknown)
{
    EXPECT_ERROR(parsePredictor("tage"), ConfigError,
                 "unknown branch predictor");
}

TEST(ParsePInteScope, AcceptsAllNames)
{
    EXPECT_EQ(parsePInteScope("llc"), PInteScope::LlcOnly);
    EXPECT_EQ(parsePInteScope("llc-only"), PInteScope::LlcOnly);
    EXPECT_EQ(parsePInteScope("l2"), PInteScope::L2Only);
    EXPECT_EQ(parsePInteScope("l2+llc"), PInteScope::L2AndLlc);
    EXPECT_EQ(parsePInteScope("both"), PInteScope::L2AndLlc);
}

TEST(ParsePInteScope, RejectsUnknown)
{
    EXPECT_ERROR(parsePInteScope("l3"), ConfigError, "unknown PInTE scope");
}

TEST(ParseProbability, AcceptsRange)
{
    EXPECT_DOUBLE_EQ(parseProbability("0"), 0.0);
    EXPECT_DOUBLE_EQ(parseProbability("1"), 1.0);
    EXPECT_DOUBLE_EQ(parseProbability("0.25"), 0.25);
    EXPECT_DOUBLE_EQ(parseProbability("1e-3"), 0.001);
}

TEST(ParseProbability, RejectsOutOfRange)
{
    EXPECT_ERROR(parseProbability("1.5"), ConfigError, "out of");
    EXPECT_ERROR(parseProbability("-0.1"), ConfigError, "out of");
}

TEST(ParseProbability, RejectsMalformed)
{
    EXPECT_ERROR(parseProbability("abc"), ConfigError, "malformed");
    EXPECT_ERROR(parseProbability("0.5x"), ConfigError, "malformed");
    EXPECT_ERROR(parseProbability(""), ConfigError, "malformed");
}

TEST(ParseIsolation, AcceptsAllBackends)
{
    EXPECT_EQ(parseIsolation("thread"), IsolationMode::Thread);
    EXPECT_EQ(parseIsolation("THREAD"), IsolationMode::Thread);
    EXPECT_EQ(parseIsolation("process"), IsolationMode::Process);
    EXPECT_EQ(parseIsolation("proc"), IsolationMode::Process);
    EXPECT_EQ(parseIsolation("Process"), IsolationMode::Process);
    EXPECT_EQ(parseIsolation("spool"), IsolationMode::Spool);
    EXPECT_EQ(parseIsolation("Spool"), IsolationMode::Spool);
}

TEST(ParseIsolation, RejectsUnknownWithValidValues)
{
    EXPECT_ERROR(parseIsolation("container"), ConfigError,
                 "unknown isolation backend");
    // The diagnostic must list the valid backends.
    EXPECT_ERROR(parseIsolation("container"), ConfigError,
                 "(thread, process, spool)");
    EXPECT_ERROR(parseIsolation(""), ConfigError,
                 "unknown isolation backend");
}

TEST(ParseRetries, AcceptsPositiveBudgets)
{
    EXPECT_EQ(parseRetries("--max-retries", "1"), 1u);
    EXPECT_EQ(parseRetries("--max-retries", "3"), 3u);
    EXPECT_EQ(parseRetries("--max-retries", "10"), 10u);
}

TEST(ParseRetries, RejectsZero)
{
    // A cell needs at least one attempt; "never retry" is spelled
    // --max-retries=1, not 0.
    EXPECT_ERROR(parseRetries("--max-retries", "0"), ConfigError,
                 "positive attempt budget");
}

TEST(ParseRetries, RejectsNegativeAndMalformed)
{
    EXPECT_ERROR(parseRetries("--max-retries", "-1"), ConfigError,
                 "non-negative integer");
    EXPECT_ERROR(parseRetries("--max-retries", "two"), ConfigError,
                 "non-negative integer");
    EXPECT_ERROR(parseRetries("--max-retries", ""), ConfigError,
                 "non-negative integer");
    EXPECT_ERROR(parseRetries("--max-retries", "99999999999999999999"),
                 ConfigError, "out of range");
}

TEST(IsolationMode, ToStringNames)
{
    EXPECT_STREQ(toString(IsolationMode::Thread), "thread");
    EXPECT_STREQ(toString(IsolationMode::Process), "process");
}
