/**
 * @file
 * Tests for the PInTE engine (core/pinte.hh): the Fig 4 state machine,
 * trigger-rate convergence, stability across seeds, and correct
 * interaction with every replacement policy.
 */

#include <gtest/gtest.h>

#include "expect_error.hh"

#include <cmath>
#include <set>

#include "cache/cache.hh"
#include "common/summary_stats.hh"
#include "core/pinte.hh"

using namespace pinte;

namespace
{

CacheConfig
llcConfig(ReplacementKind repl = ReplacementKind::Lru)
{
    CacheConfig c;
    c.name = "LLC";
    c.numSets = 8;
    c.assoc = 8;
    c.latency = 10;
    c.replacement = repl;
    return c;
}

MemAccess
load(Addr addr, Cycle cycle = 0)
{
    MemAccess r;
    r.addr = addr;
    r.type = AccessType::Load;
    r.cycle = cycle;
    return r;
}

/** Drive `n` distinct-line loads through the cache. */
void
drive(Cache &c, int n, Addr base = 0)
{
    for (int i = 0; i < n; ++i)
        c.access(load(base + static_cast<Addr>(i) * blockSize,
                      static_cast<Cycle>(i) * 20));
}

} // namespace

TEST(PInte, ZeroProbabilityNeverTriggers)
{
    Cache c(llcConfig(), nullptr);
    PInte engine({0.0, 1});
    c.setReplacementHook(&engine);
    drive(c, 1000);
    EXPECT_EQ(engine.stats().triggers, 0u);
    EXPECT_EQ(engine.stats().invalidations, 0u);
    EXPECT_EQ(engine.stats().accessesSeen, 1000u);
}

TEST(PInte, CertainProbabilityAlwaysTriggers)
{
    Cache c(llcConfig(), nullptr);
    PInte engine({1.0, 1});
    c.setReplacementHook(&engine);
    drive(c, 500);
    EXPECT_EQ(engine.stats().triggers, 500u);
}

TEST(PInte, TriggerRateConvergesToPInduce)
{
    for (double p : {0.05, 0.25, 0.6}) {
        Cache c(llcConfig(), nullptr);
        PInte engine({p, 42});
        c.setReplacementHook(&engine);
        drive(c, 20000);
        EXPECT_NEAR(engine.stats().triggerRate(), p, 0.02) << "p=" << p;
    }
}

TEST(PInte, MockedTheftsLandInCacheStats)
{
    Cache c(llcConfig(), nullptr);
    PInte engine({0.5, 7});
    c.setReplacementHook(&engine);
    drive(c, 2000);
    EXPECT_EQ(c.stats().perCore[0].mockedThefts,
              engine.stats().invalidations);
    EXPECT_GT(engine.stats().invalidations, 0u);
}

TEST(PInte, PromotionsAtLeastInvalidations)
{
    Cache c(llcConfig(), nullptr);
    PInte engine({0.3, 9});
    c.setReplacementHook(&engine);
    drive(c, 5000);
    EXPECT_GE(engine.stats().promotions, engine.stats().invalidations);
}

TEST(PInte, EvictCountBoundedByAssociativity)
{
    Cache c(llcConfig(), nullptr);
    PInte engine({1.0, 11});
    c.setReplacementHook(&engine);
    drive(c, 1000);
    // Each trigger draws Blocks_evict in [0, assoc]; the mean of the
    // per-trigger request must sit near assoc/2 and never exceed assoc.
    const double mean_req =
        static_cast<double>(engine.stats().requestedEvicts) /
        static_cast<double>(engine.stats().triggers);
    EXPECT_GT(mean_req, 2.0);
    EXPECT_LE(mean_req, 8.0);
}

TEST(PInte, ContentionRateMonotoneInPInduce)
{
    double previous = -1.0;
    for (double p : {0.01, 0.05, 0.2, 0.5}) {
        Cache c(llcConfig(), nullptr);
        PInte engine({p, 5});
        c.setReplacementHook(&engine);
        // Loop over a footprint that fits the cache so blocks are
        // valid and theft-able.
        for (int i = 0; i < 8000; ++i)
            c.access(load((static_cast<Addr>(i) % 64) * blockSize,
                          static_cast<Cycle>(i) * 20));
        const double rate = c.stats().perCore[0].contentionRate();
        EXPECT_GT(rate, previous) << "p=" << p;
        previous = rate;
    }
}

TEST(PInte, InducedContentionCausesMisses)
{
    // Without PInTE the loop fits: ~zero steady-state misses. With
    // PInTE at 30%, stolen blocks force re-fetches.
    auto run = [](double p) {
        Cache c(llcConfig(), nullptr);
        PInte engine({p, 3});
        c.setReplacementHook(&engine);
        for (int i = 0; i < 4000; ++i)
            c.access(load((static_cast<Addr>(i) % 64) * blockSize,
                          static_cast<Cycle>(i) * 20));
        return c.stats().perCore[0].misses;
    };
    EXPECT_GT(run(0.3), 4 * run(0.0));
}

TEST(PInte, InvalidatedBlocksKeepPromotedPosition)
{
    // After a PInTE episode the invalid slot sits at the protected end
    // (the mocked adversary "inserted" there); the next fill must
    // reclaim an invalid way rather than evict valid data.
    Cache c(llcConfig(), nullptr);
    // Fill set 0 completely.
    for (unsigned t = 0; t < 8; ++t)
        c.access(load(t * 8 * blockSize, t * 20));
    PInte engine({1.0, 13});
    c.setReplacementHook(&engine);
    const auto before = c.stats().perCore[0].selfEvictions;
    // This access triggers an episode; follow-up fills go to invalid
    // ways, so self-evictions should not explode.
    c.access(load(99 * 8 * blockSize, 1000));
    c.setReplacementHook(nullptr);
    c.access(load(100 * 8 * blockSize, 2000));
    c.access(load(101 * 8 * blockSize, 3000));
    EXPECT_EQ(c.stats().perCore[0].selfEvictions, before + 1);
}

TEST(PInte, DirtyVictimsCreateWritebackTraffic)
{
    class WbCounter : public MemoryLevel
    {
      public:
        AccessResult
        access(const MemAccess &req) override
        {
            if (req.type == AccessType::Writeback)
                ++writebacks;
            return {req.cycle + 50, false};
        }
        const char *levelName() const override { return "wb"; }
        int writebacks = 0;
    };

    WbCounter mem;
    Cache c(llcConfig(), &mem);
    PInte engine({0.5, 17});
    c.setReplacementHook(&engine);
    for (int i = 0; i < 2000; ++i) {
        MemAccess st;
        st.addr = (static_cast<Addr>(i) % 64) * blockSize;
        st.type = AccessType::Store;
        st.cycle = static_cast<Cycle>(i) * 20;
        c.access(st);
    }
    EXPECT_GT(mem.writebacks, 0);
}

TEST(PInte, NoPromoteWalkInvalidatesDistinctBlocks)
{
    // Regression: without PROMOTE the stack ranks never shift (theft
    // invalidation keeps the slot's position), and the StackEnd walk
    // re-selected the rank-0 way every iteration — a Blocks_evict draw
    // of k invalidated at most one block. On a full set every
    // requested eviction must land on a distinct valid block.
    bool saw_multi_block_episode = false;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        Cache c(llcConfig(), nullptr);
        for (unsigned t = 0; t < 8; ++t) // fill set 0 completely
            c.access(load(t * 8 * blockSize, t * 20));
        PInte engine({1.0, seed, /*promote=*/false,
                      BlockSelectPolicy::StackEnd});
        engine.onAccess(c, 0, 0, 1000);
        const auto &st = engine.stats();
        ASSERT_EQ(st.triggers, 1u);
        EXPECT_EQ(st.invalidations, st.requestedEvicts);
        unsigned invalid = 0;
        for (unsigned way = 0; way < 8; ++way)
            if (!c.valid(0, way))
                ++invalid;
        EXPECT_EQ(invalid, st.invalidations);
        if (st.requestedEvicts >= 2)
            saw_multi_block_episode = true;
    }
    // At least one seed must draw a multi-block episode, or this test
    // cannot distinguish the walk from the broken one.
    EXPECT_TRUE(saw_multi_block_episode);
}

TEST(PInte, StatsClearable)
{
    Cache c(llcConfig(), nullptr);
    PInte engine({0.5, 19});
    c.setReplacementHook(&engine);
    drive(c, 500);
    engine.clearStats();
    EXPECT_EQ(engine.stats().triggers, 0u);
    EXPECT_EQ(engine.stats().accessesSeen, 0u);
}

TEST(PInte, OutOfRangeProbabilityIsFatal)
{
    EXPECT_ERROR(PInte({1.5, 1}), ConfigError, "P_Induce");
    EXPECT_ERROR(PInte({-0.1, 1}), ConfigError, "P_Induce");
}

TEST(PInte, StandardSweepHasTwelveAscendingPoints)
{
    const auto &sweep = standardPInduceSweep();
    ASSERT_EQ(sweep.size(), 12u);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GT(sweep[i], sweep[i - 1]);
    EXPECT_GT(sweep.front(), 0.0);
    EXPECT_LE(sweep.back(), 1.0);
}

TEST(PInte, StabilityAcrossSeeds)
{
    // Fig 3: re-runs with different engine seeds must land within a
    // tight band. Normalized stddev of the miss count < 5%.
    std::vector<double> misses;
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        Cache c(llcConfig(), nullptr);
        PInte engine({0.2, seed});
        c.setReplacementHook(&engine);
        for (int i = 0; i < 6000; ++i)
            c.access(load((static_cast<Addr>(i) % 64) * blockSize,
                          static_cast<Cycle>(i) * 20));
        misses.push_back(
            static_cast<double>(c.stats().perCore[0].misses));
    }
    const SummaryStats s = summarize(misses);
    EXPECT_LT(s.normStddev(), 0.05);
    EXPECT_GT(s.mean, 0.0);
}

TEST(PInte, DifferentSeedsGiveDifferentEventPlacement)
{
    auto run = [](std::uint64_t seed) {
        Cache c(llcConfig(), nullptr);
        PInte engine({0.2, seed});
        c.setReplacementHook(&engine);
        drive(c, 200);
        return engine.stats().triggers;
    };
    // Counts may coincide, but across several seeds we expect spread.
    const auto a = run(1), b = run(2), c2 = run(3);
    EXPECT_TRUE(a != b || b != c2);
}

TEST(PInte, ContentionSpreadsUniformlyAcrossSets)
{
    // Fig 1's premise: PInTE covers contention uniformly, because it
    // triggers on whatever set the workload touches and the driver
    // touches all sets evenly here. No set should soak up a
    // disproportionate share of the induced thefts.
    Cache c(llcConfig(), nullptr);
    PInte engine({0.5, 29});
    c.setReplacementHook(&engine);

    std::vector<std::uint64_t> before(8, 0);
    // Round-robin across the 8 sets with a footprint that keeps every
    // set full.
    for (int i = 0; i < 32000; ++i)
        c.access(load((static_cast<Addr>(i) % 64) * blockSize,
                      static_cast<Cycle>(i) * 20));

    // Count mocked thefts per set by probing valid-block churn: redo
    // with per-set counting through the stats delta of a fresh cache.
    // Simpler: count invalid blocks encountered per set over time is
    // noisy; instead verify via per-set theft counters kept here.
    // The engine doesn't expose per-set stats, so re-run with 8
    // single-set caches, one per set index - equivalent workload.
    std::vector<double> per_set;
    for (unsigned s = 0; s < 8; ++s) {
        CacheConfig cfg = llcConfig();
        cfg.numSets = 1;
        Cache single(cfg, nullptr);
        PInte e({0.5, 29 + s});
        single.setReplacementHook(&e);
        for (int i = 0; i < 4000; ++i)
            single.access(load((static_cast<Addr>(i) % 8) * blockSize *
                                   8,
                               static_cast<Cycle>(i) * 20));
        per_set.push_back(
            static_cast<double>(e.stats().invalidations));
    }
    const SummaryStats stats = summarize(per_set);
    EXPECT_LT(stats.normStddev(), 0.15);
    EXPECT_GT(stats.mean, 100.0);
}

TEST(PInte, GoldenDeterminism)
{
    // Regression pin: the exact event counts of a fixed scenario.
    // This intentionally breaks when any component on the access path
    // changes behavior — update the constants deliberately, never
    // casually. (Scenario: 64-line loop, 8x8 LLC, P=0.25, seed 77.)
    Cache c(llcConfig(), nullptr);
    PInte engine({0.25, 77});
    c.setReplacementHook(&engine);
    for (int i = 0; i < 5000; ++i)
        c.access(load((static_cast<Addr>(i) % 64) * blockSize,
                      static_cast<Cycle>(i) * 20));
    const auto &st = c.stats().perCore[0];
    const auto &es = engine.stats();
    EXPECT_EQ(st.accesses, 5000u);
    EXPECT_EQ(es.accessesSeen, 5000u);
    // Trigger count is a pure function of the seed and P_Induce.
    EXPECT_EQ(es.triggers, 1253u);
    EXPECT_EQ(st.misses, st.accesses - st.hits);
    EXPECT_EQ(st.mockedThefts, es.invalidations);
}

class PIntePolicyTest
    : public ::testing::TestWithParam<ReplacementKind>
{
};

TEST_P(PIntePolicyTest, EngineWorksWithEveryReplacementPolicy)
{
    Cache c(llcConfig(GetParam()), nullptr);
    PInte engine({0.4, 23});
    c.setReplacementHook(&engine);
    for (int i = 0; i < 4000; ++i)
        c.access(load((static_cast<Addr>(i) % 64) * blockSize,
                      static_cast<Cycle>(i) * 20));
    EXPECT_GT(engine.stats().triggers, 0u);
    EXPECT_GT(engine.stats().invalidations, 0u);
    EXPECT_EQ(c.stats().perCore[0].mockedThefts,
              engine.stats().invalidations);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PIntePolicyTest,
    ::testing::Values(ReplacementKind::Lru, ReplacementKind::PseudoLru,
                      ReplacementKind::Nmru, ReplacementKind::Rrip,
                      ReplacementKind::Random, ReplacementKind::Drrip,
                      ReplacementKind::Lhd),
    [](const auto &info) { return std::string(toString(info.param)); });

TEST(PInte, RandomPolicyTheftsSpreadAcrossWays)
{
    // Regression: RandomPolicy::rank() used to return the way index,
    // making the rank permutation the identity in every set — the
    // StackEnd walk's rank-0 target was always way 0, so every induced
    // theft under random replacement stole way 0, a systematic bias no
    // real random-replacement cache exhibits. With seeded per-set
    // permutations, the rank-0 way varies by set and the stolen-way
    // histogram must cover multiple ways.
    CacheConfig cfg = llcConfig(ReplacementKind::Random);
    cfg.numSets = 32;
    Cache c(cfg, nullptr);
    for (unsigned t = 0; t < 8; ++t)
        for (unsigned s = 0; s < 32; ++s)
            c.access(load(static_cast<Addr>(t * 32 + s) * blockSize,
                          static_cast<Cycle>(t) * 20));
    PInte engine({1.0, 9});
    std::set<unsigned> stolen_ways;
    for (unsigned s = 0; s < 32; ++s) {
        engine.onAccess(c, s, 0, 1000);
        for (unsigned w = 0; w < 8; ++w)
            if (!c.valid(s, w))
                stolen_ways.insert(w);
    }
    EXPECT_GT(engine.stats().invalidations, 0u);
    EXPECT_GE(stolen_ways.size(), 3u);
}
