/**
 * @file
 * Crosscutting invariant properties, checked under randomized
 * operation sequences across every replacement policy.
 *
 * These are the accounting identities the paper's metrics rest on: if
 * occupancy, theft duals or reuse totals drift, every contention rate
 * and every Table II number silently rots.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "core/pinte.hh"

using namespace pinte;

namespace
{

CacheConfig
config(ReplacementKind k, unsigned cores)
{
    CacheConfig c;
    c.name = "prop";
    c.numSets = 8;
    c.assoc = 8;
    c.latency = 5;
    c.replacement = k;
    c.numCores = cores;
    return c;
}

/** Count valid blocks the slow way. */
std::uint64_t
validBlocks(const Cache &c)
{
    std::uint64_t n = 0;
    for (unsigned s = 0; s < c.numSets(); ++s)
        for (unsigned w = 0; w < c.assoc(); ++w)
            if (c.valid(s, w))
                ++n;
    return n;
}

std::uint64_t
totalOccupancy(const Cache &c, unsigned cores)
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < cores; ++i)
        n += c.occupancy(i);
    return n;
}

/** One random demand/writeback op. */
void
randomOp(Cache &c, Rng &rng, unsigned cores, Cycle t)
{
    MemAccess req;
    req.addr = rng.drawRange(256) * blockSize;
    req.core = static_cast<CoreId>(rng.drawRange(cores));
    req.cycle = t;
    switch (rng.drawRange(3)) {
      case 0: req.type = AccessType::Load; break;
      case 1: req.type = AccessType::Store; break;
      case 2:
        req.type = AccessType::Writeback;
        req.wbDirty = rng.drawBool(0.5);
        break;
    }
    c.access(req);
}

const ReplacementKind allKinds[] = {
    ReplacementKind::Lru,    ReplacementKind::PseudoLru,
    ReplacementKind::Nmru,   ReplacementKind::Rrip,
    ReplacementKind::Random, ReplacementKind::Drrip,
};

} // namespace

class InvariantTest : public ::testing::TestWithParam<ReplacementKind>
{
};

TEST_P(InvariantTest, OccupancySumEqualsValidBlocks)
{
    Cache c(config(GetParam(), 2), nullptr);
    Rng rng(101);
    for (int i = 0; i < 5000; ++i) {
        randomOp(c, rng, 2, static_cast<Cycle>(i) * 10);
        if (i % 257 == 0)
            ASSERT_EQ(totalOccupancy(c, 2), validBlocks(c))
                << "iteration " << i;
    }
    EXPECT_EQ(totalOccupancy(c, 2), validBlocks(c));
}

TEST_P(InvariantTest, OccupancyHoldsUnderPInteEpisodes)
{
    Cache c(config(GetParam(), 2), nullptr);
    PInte engine({0.4, 55});
    c.setReplacementHook(&engine);
    Rng rng(103);
    for (int i = 0; i < 5000; ++i) {
        randomOp(c, rng, 2, static_cast<Cycle>(i) * 10);
        if (i % 257 == 0)
            ASSERT_EQ(totalOccupancy(c, 2), validBlocks(c))
                << "iteration " << i;
    }
    EXPECT_GT(engine.stats().invalidations, 0u);
}

TEST_P(InvariantTest, TheftDualsBalance)
{
    // Every theft has exactly one causer and one sufferer.
    Cache c(config(GetParam(), 3), nullptr);
    Rng rng(107);
    for (int i = 0; i < 8000; ++i)
        randomOp(c, rng, 3, static_cast<Cycle>(i) * 10);

    std::uint64_t caused = 0, suffered = 0;
    for (unsigned i = 0; i < 3; ++i) {
        caused += c.stats().perCore[i].theftsCaused;
        suffered += c.stats().perCore[i].theftsSuffered;
    }
    EXPECT_EQ(caused, suffered);
    EXPECT_GT(caused, 0u);
}

TEST_P(InvariantTest, ReuseMassBoundedByHits)
{
    Cache c(config(GetParam(), 1), nullptr);
    Rng rng(109);
    for (int i = 0; i < 5000; ++i) {
        MemAccess req;
        req.addr = rng.drawRange(128) * blockSize;
        req.type = AccessType::Load;
        req.cycle = static_cast<Cycle>(i) * 10;
        c.access(req);
    }
    const auto &st = c.stats().perCore[0];
    EXPECT_EQ(c.stats().reuse[0].total(), st.hits);
    EXPECT_EQ(st.hits + st.misses, st.accesses);
}

TEST_P(InvariantTest, WayMaskNeverViolated)
{
    Cache c(config(GetParam(), 2), nullptr);
    c.setWayMask(0, 0x0f);
    c.setWayMask(1, 0xf0);
    Rng rng(113);
    for (int i = 0; i < 6000; ++i) {
        MemAccess req;
        req.addr = rng.drawRange(256) * blockSize;
        req.core = static_cast<CoreId>(rng.drawRange(2));
        req.type = rng.drawBool(0.3) ? AccessType::Store
                                     : AccessType::Load;
        req.cycle = static_cast<Cycle>(i) * 10;
        c.access(req);
        if (i % 509 == 0) {
            for (unsigned s = 0; s < c.numSets(); ++s) {
                for (unsigned w = 0; w < c.assoc(); ++w) {
                    if (!c.valid(s, w))
                        continue;
                    const CoreId owner = c.owner(s, w);
                    const std::uint64_t mask =
                        owner == 0 ? 0x0full : 0xf0ull;
                    ASSERT_TRUE((mask >> w) & 1)
                        << "core " << owner << " block in way " << w;
                }
            }
        }
    }
}

TEST_P(InvariantTest, DeterministicUnderFixedSeed)
{
    auto run = [&] {
        Cache c(config(GetParam(), 2), nullptr);
        Rng rng(127);
        for (int i = 0; i < 4000; ++i)
            randomOp(c, rng, 2, static_cast<Cycle>(i) * 10);
        const auto &st = c.stats().perCore[0];
        return std::tuple(st.hits, st.misses, st.theftsCaused,
                          validBlocks(c));
    };
    EXPECT_EQ(run(), run());
}

TEST_P(InvariantTest, ContentionRateIdentity)
{
    Cache c(config(GetParam(), 1), nullptr);
    PInte engine({0.3, 131});
    c.setReplacementHook(&engine);
    Rng rng(131);
    for (int i = 0; i < 4000; ++i) {
        MemAccess req;
        req.addr = rng.drawRange(96) * blockSize;
        req.type = AccessType::Load;
        req.cycle = static_cast<Cycle>(i) * 10;
        c.access(req);
    }
    const auto &st = c.stats().perCore[0];
    const double expected =
        static_cast<double>(st.theftsSuffered + st.mockedThefts) /
        static_cast<double>(st.accesses);
    EXPECT_DOUBLE_EQ(st.contentionRate(), expected);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, InvariantTest,
                         ::testing::ValuesIn(allKinds),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });
