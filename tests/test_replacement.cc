/**
 * @file
 * Tests for the replacement policies (replacement/policy.hh),
 * including the rank-permutation property PInTE's walk depends on.
 */

#include <gtest/gtest.h>

#include "expect_error.hh"

#include <set>

#include "common/rng.hh"
#include "common/snapshot.hh"
#include "replacement/lhd.hh"
#include "replacement/policies.hh"
#include "replacement/policy.hh"

using namespace pinte;

namespace
{

const ReplacementKind allKinds[] = {
    ReplacementKind::Lru,       ReplacementKind::PseudoLru,
    ReplacementKind::Nmru,      ReplacementKind::Rrip,
    ReplacementKind::Random,    ReplacementKind::Drrip,
    ReplacementKind::Lhd,
};

} // namespace

class PolicyTest : public ::testing::TestWithParam<ReplacementKind>
{
  protected:
    static constexpr unsigned sets = 4;
    static constexpr unsigned assoc = 8;

    std::unique_ptr<ReplacementPolicy> p_ =
        makeReplacementPolicy(GetParam(), sets, assoc, 99);
};

TEST_P(PolicyTest, VictimInRange)
{
    Rng r(1);
    for (int i = 0; i < 1000; ++i) {
        const unsigned set = static_cast<unsigned>(r.drawRange(sets));
        EXPECT_LT(p_->victim(set), assoc);
        p_->onFill(set, static_cast<unsigned>(r.drawRange(assoc)));
    }
}

TEST_P(PolicyTest, RanksFormPermutationInitially)
{
    for (unsigned set = 0; set < sets; ++set) {
        std::set<unsigned> ranks;
        for (unsigned w = 0; w < assoc; ++w) {
            const unsigned r = p_->rank(set, w);
            EXPECT_LT(r, assoc);
            ranks.insert(r);
        }
        EXPECT_EQ(ranks.size(), assoc);
    }
}

TEST_P(PolicyTest, RanksFormPermutationAfterRandomOps)
{
    Rng r(7);
    for (int i = 0; i < 2000; ++i) {
        const unsigned set = static_cast<unsigned>(r.drawRange(sets));
        const unsigned way = static_cast<unsigned>(r.drawRange(assoc));
        switch (r.drawRange(3)) {
          case 0: p_->onFill(set, way); break;
          case 1: p_->onHit(set, way); break;
          case 2: p_->onInvalidate(set, way); break;
        }
        std::set<unsigned> ranks;
        for (unsigned w = 0; w < assoc; ++w)
            ranks.insert(p_->rank(set, w));
        ASSERT_EQ(ranks.size(), assoc) << p_->name() << " iter " << i;
    }
}

TEST_P(PolicyTest, BulkRanksAgreeWithPerWayRanks)
{
    // Randomized oracle for the single-pass ranks() overrides: the
    // bulk permutation must equal assoc per-way rank() calls after any
    // op sequence. This is the contract PInTE's walk and wayAtRank()
    // read through, and it pins the DRRIP counting-sort override
    // (which replaced an O(assoc^2) per-way scan) to the per-way
    // formula including its tie-break.
    Rng r(31);
    std::uint8_t bulk[64];
    for (int i = 0; i < 2000; ++i) {
        const unsigned set = static_cast<unsigned>(r.drawRange(sets));
        const unsigned way = static_cast<unsigned>(r.drawRange(assoc));
        switch (r.drawRange(3)) {
          case 0: p_->onFill(set, way); break;
          case 1: p_->onHit(set, way); break;
          case 2: p_->onInvalidate(set, way); break;
        }
        p_->ranks(set, bulk);
        for (unsigned w = 0; w < assoc; ++w)
            ASSERT_EQ(bulk[w], p_->rank(set, w))
                << p_->name() << " set " << set << " way " << w
                << " iter " << i;
    }
}

TEST_P(PolicyTest, WayAtRankInvertsRank)
{
    Rng r(13);
    for (int i = 0; i < 200; ++i) {
        const unsigned set = static_cast<unsigned>(r.drawRange(sets));
        p_->onHit(set, static_cast<unsigned>(r.drawRange(assoc)));
        for (unsigned rank = 0; rank < assoc; ++rank) {
            const unsigned way = p_->wayAtRank(set, rank);
            ASSERT_EQ(p_->rank(set, way), rank);
        }
    }
}

TEST_P(PolicyTest, NameMatchesFactoryKind)
{
    EXPECT_STREQ(p_->name(), toString(GetParam()));
}

TEST_P(PolicyTest, SetsAreIndependent)
{
    // Promoting ways in set 0 must not disturb set 1's ordering.
    std::vector<unsigned> before;
    for (unsigned w = 0; w < assoc; ++w)
        before.push_back(p_->rank(1, w));
    for (int i = 0; i < 50; ++i)
        p_->onHit(0, static_cast<unsigned>(i % assoc));
    for (unsigned w = 0; w < assoc; ++w)
        EXPECT_EQ(p_->rank(1, w), before[w]);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::ValuesIn(allKinds),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });

TEST(Lru, ExactStackBehavior)
{
    auto p = makeReplacementPolicy(ReplacementKind::Lru, 1, 4);
    // Touch 0,1,2,3 in order: 0 is LRU (rank 0), 3 is MRU (rank 3).
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(0, w);
    EXPECT_EQ(p->rank(0, 0), 0u);
    EXPECT_EQ(p->rank(0, 3), 3u);
    EXPECT_EQ(p->victim(0), 0u);

    // Re-touch way 0: it becomes MRU, way 1 becomes victim.
    p->onHit(0, 0);
    EXPECT_EQ(p->rank(0, 0), 3u);
    EXPECT_EQ(p->victim(0), 1u);
}

TEST(Lru, VictimIsRankZero)
{
    auto p = makeReplacementPolicy(ReplacementKind::Lru, 2, 8);
    Rng r(3);
    for (int i = 0; i < 500; ++i) {
        const unsigned set = static_cast<unsigned>(r.drawRange(2));
        p->onHit(set, static_cast<unsigned>(r.drawRange(8)));
        EXPECT_EQ(p->rank(set, p->victim(set)), 0u);
    }
}

TEST(Lru, InvalidatedWayBecomesNextVictim)
{
    auto p = makeReplacementPolicy(ReplacementKind::Lru, 1, 4);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(0, w);
    p->onInvalidate(0, 2);
    EXPECT_EQ(p->victim(0), 2u);
}

namespace
{

/**
 * Reference LRU: the per-way-timestamp implementation the flat
 * rank-permutation LruPolicy replaced. Kept verbatim as an oracle —
 * the production policy must stay observation-equivalent to it
 * (same victim, same ranks) under any op sequence.
 */
class TimestampLru
{
  public:
    TimestampLru(unsigned num_sets, unsigned assoc)
        : assoc_(assoc),
          stamp_(static_cast<std::size_t>(num_sets) * assoc, 0)
    {}

    unsigned
    victim(unsigned set) const
    {
        unsigned v = 0;
        std::uint64_t best = ~0ull;
        for (unsigned w = 0; w < assoc_; ++w) {
            if (at(set, w) < best) {
                best = at(set, w);
                v = w;
            }
        }
        return v;
    }

    void touch(unsigned s, unsigned w) { at(s, w) = ++clock_; }
    void invalidate(unsigned s, unsigned w) { at(s, w) = 0; }

    unsigned
    rank(unsigned set, unsigned way) const
    {
        unsigned r = 0;
        for (unsigned w = 0; w < assoc_; ++w) {
            if (w == way)
                continue;
            if (at(set, w) < at(set, way) ||
                (at(set, w) == at(set, way) && w < way))
                ++r;
        }
        return r;
    }

  private:
    std::uint64_t &at(unsigned s, unsigned w)
    { return stamp_[std::size_t(s) * assoc_ + w]; }
    const std::uint64_t &at(unsigned s, unsigned w) const
    { return stamp_[std::size_t(s) * assoc_ + w]; }

    unsigned assoc_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamp_;
};

} // namespace

TEST(Lru, MatchesTimestampReferenceUnderRandomOps)
{
    // Associativities chosen to exercise the packed layout: one word
    // exactly, a partial tail word, two full words, and the 64-way cap.
    for (const unsigned assoc : {1u, 3u, 8u, 13u, 16u, 64u}) {
        const unsigned sets = 4;
        auto flat = makeReplacementPolicy(ReplacementKind::Lru, sets,
                                          assoc);
        TimestampLru ref(sets, assoc);
        Rng r(42 + assoc);
        for (int i = 0; i < 4000; ++i) {
            const unsigned set = static_cast<unsigned>(r.drawRange(sets));
            const unsigned way =
                static_cast<unsigned>(r.drawRange(assoc));
            switch (r.drawRange(4)) {
              case 0: flat->onFill(set, way); ref.touch(set, way); break;
              case 1: flat->onHit(set, way); ref.touch(set, way); break;
              case 2:
                flat->onInvalidate(set, way);
                ref.invalidate(set, way);
                break;
              case 3:
                // Double-invalidate: a timestamp impl no-ops here.
                flat->onInvalidate(set, way);
                flat->onInvalidate(set, way);
                ref.invalidate(set, way);
                break;
            }
            ASSERT_EQ(flat->victim(set), ref.victim(set))
                << "assoc " << assoc << " iter " << i;
            for (unsigned w = 0; w < assoc; ++w)
                ASSERT_EQ(flat->rank(set, w), ref.rank(set, w))
                    << "assoc " << assoc << " way " << w << " iter " << i;
        }
    }
}

TEST(PseudoLru, RecentlyTouchedWayIsNotVictim)
{
    auto p = makeReplacementPolicy(ReplacementKind::PseudoLru, 1, 8);
    Rng r(5);
    for (int i = 0; i < 500; ++i) {
        const unsigned way = static_cast<unsigned>(r.drawRange(8));
        p->onHit(0, way);
        EXPECT_NE(p->victim(0), way);
    }
}

TEST(PseudoLru, TouchedWayHasHighestRank)
{
    auto p = makeReplacementPolicy(ReplacementKind::PseudoLru, 1, 8);
    for (unsigned w = 0; w < 8; ++w) {
        p->onHit(0, w);
        EXPECT_EQ(p->rank(0, w), 7u);
    }
}

TEST(PseudoLru, VictimMatchesRankZero)
{
    auto p = makeReplacementPolicy(ReplacementKind::PseudoLru, 1, 8);
    Rng r(11);
    for (int i = 0; i < 500; ++i) {
        p->onHit(0, static_cast<unsigned>(r.drawRange(8)));
        EXPECT_EQ(p->rank(0, p->victim(0)), 0u);
    }
}

TEST(PseudoLru, RequiresPowerOfTwoAssoc)
{
    EXPECT_ERROR(makeReplacementPolicy(ReplacementKind::PseudoLru, 4, 6),
                 ConfigError, "power-of-two");
}

TEST(Nmru, NeverEvictsMostRecentlyUsed)
{
    auto p = makeReplacementPolicy(ReplacementKind::Nmru, 1, 8, 3);
    Rng r(17);
    for (int i = 0; i < 1000; ++i) {
        const unsigned way = static_cast<unsigned>(r.drawRange(8));
        p->onHit(0, way);
        EXPECT_NE(p->victim(0), way);
    }
}

TEST(Nmru, MruHasMaxRank)
{
    auto p = makeReplacementPolicy(ReplacementKind::Nmru, 1, 8, 3);
    p->onHit(0, 5);
    EXPECT_EQ(p->rank(0, 5), 7u);
}

TEST(Nmru, VictimsRotateAcrossWays)
{
    auto p = makeReplacementPolicy(ReplacementKind::Nmru, 1, 4, 3);
    p->onHit(0, 0); // MRU = 0
    std::set<unsigned> victims;
    for (int i = 0; i < 3; ++i)
        victims.insert(p->victim(0));
    // With MRU protected, the rotating cursor visits the other 3 ways.
    EXPECT_EQ(victims.size(), 3u);
    EXPECT_EQ(victims.count(0), 0u);
}

TEST(Rrip, HitsProtectBlocks)
{
    auto p = makeReplacementPolicy(ReplacementKind::Rrip, 1, 4);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(0, w);
    p->onHit(0, 2); // rrpv 0, most protected
    EXPECT_EQ(p->rank(0, 2), 3u);
    EXPECT_NE(p->victim(0), 2u);
}

TEST(Rrip, FillInsertsWithLongRereferenceInterval)
{
    auto p = makeReplacementPolicy(ReplacementKind::Rrip, 1, 4);
    p->onFill(0, 0);
    p->onHit(0, 0); // rrpv 0
    p->onFill(0, 1); // rrpv 2
    // Way with rrpv 3 (never touched) should be victim before way 1.
    const unsigned v = p->victim(0);
    EXPECT_TRUE(v == 2 || v == 3);
}

TEST(Rrip, VictimAgingTerminates)
{
    auto p = makeReplacementPolicy(ReplacementKind::Rrip, 1, 4);
    // All protected: victim() must age and still return.
    for (unsigned w = 0; w < 4; ++w) {
        p->onFill(0, w);
        p->onHit(0, w);
    }
    EXPECT_LT(p->victim(0), 4u);
}

TEST(Random, VictimsSpreadAcrossWays)
{
    auto p = makeReplacementPolicy(ReplacementKind::Random, 1, 8, 21);
    std::set<unsigned> victims;
    for (int i = 0; i < 200; ++i)
        victims.insert(p->victim(0));
    EXPECT_EQ(victims.size(), 8u);
}

TEST(Random, DeterministicAcrossSeeds)
{
    auto a = makeReplacementPolicy(ReplacementKind::Random, 1, 8, 21);
    auto b = makeReplacementPolicy(ReplacementKind::Random, 1, 8, 21);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a->victim(0), b->victim(0));
}

TEST(Drrip, HitsProtectBlocks)
{
    auto p = makeReplacementPolicy(ReplacementKind::Drrip, 16, 4, 5);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(1, w);
    p->onHit(1, 2);
    EXPECT_EQ(p->rank(1, 2), 3u);
    EXPECT_NE(p->victim(1), 2u);
}

TEST(Drrip, LeaderSetsSteerPsel)
{
    // Hammer fills into SRRIP leader sets only: PSEL must saturate
    // toward "SRRIP is missing", flipping followers to BRRIP.
    auto base = makeReplacementPolicy(ReplacementKind::Drrip, 16, 4, 5);
    // Leaders are sets 0 and 8 (period 8): fill set 0 repeatedly.
    for (int i = 0; i < 2000; ++i)
        base->onFill(0, static_cast<unsigned>(i % 4));
    // Follower inserts should now be BRRIP-style: mostly rrpv=max.
    // Protect the other ways first (rrpv=0) so a max-rrpv insert is
    // unambiguously rank 0.
    for (unsigned w : {0u, 2u, 3u}) {
        base->onFill(3, w);
        base->onHit(3, w);
    }
    int distant = 0;
    for (int i = 0; i < 64; ++i) {
        base->onFill(3, 1);
        if (base->rank(3, 1) == 0)
            ++distant;
    }
    EXPECT_GT(distant, 48);
}

TEST(Drrip, FollowerInsertsSrripWhenBrripLeadersMiss)
{
    auto p = makeReplacementPolicy(ReplacementKind::Drrip, 16, 4, 5);
    // Hammer the BRRIP leader (set 4, period 8 -> 8/2 = 4).
    for (int i = 0; i < 2000; ++i)
        p->onFill(4, static_cast<unsigned>(i % 4));
    // Followers should insert SRRIP-style (rrpv = max-1): a fresh
    // fill outranks untouched (rrpv = max) ways.
    p->onFill(3, 1);
    EXPECT_GT(p->rank(3, 1), 0u);
}

TEST(Drrip, SmallCacheStillDuels)
{
    // Regression: with the nominal duel period of 8, a 4-set cache
    // contained the SRRIP leader (set 0) but no set 4 — zero BRRIP
    // leaders, so PSEL could only saturate upward and the duel
    // degenerated to static SRRIP. The period now clamps to the set
    // count, making set 2 the BRRIP leader; misses there must move
    // PSEL down.
    DrripPolicy p(4, 4, 5);
    const int start = p.psel();
    for (int i = 0; i < 64; ++i)
        p.onFill(2, static_cast<unsigned>(i % 4));
    EXPECT_LT(p.psel(), start);
}

TEST(Drrip, SingleSetDegeneratesToSrripExplicitly)
{
    // One set cannot host leaders of both families: the clamp leaves
    // set 0 the SRRIP leader and no BRRIP leader, so PSEL never drops
    // below its start and followers never flip to BRRIP.
    DrripPolicy p(1, 4, 5);
    const int start = p.psel();
    for (int i = 0; i < 64; ++i)
        p.onFill(0, static_cast<unsigned>(i % 4));
    EXPECT_GE(p.psel(), start);
}

TEST(Random, RanksAreSeededPerSetPermutations)
{
    // Regression: rank() used to return the way index itself, so the
    // rank permutation was the identity in every set and PInTE's
    // eviction-end walk stole way 0 of whatever set triggered. The
    // seeded permutations must differ from the identity and across
    // sets, while staying deterministic for a given seed.
    const unsigned sets = 16, assoc = 8;
    RandomPolicy p(sets, assoc, 21);
    bool non_identity = false, differ_across_sets = false;
    std::vector<unsigned> set0;
    for (unsigned s = 0; s < sets; ++s) {
        std::set<unsigned> seen;
        for (unsigned w = 0; w < assoc; ++w) {
            const unsigned r = p.rank(s, w);
            ASSERT_LT(r, assoc);
            seen.insert(r);
            if (r != w)
                non_identity = true;
            if (s == 0)
                set0.push_back(r);
            else if (r != set0[w])
                differ_across_sets = true;
        }
        ASSERT_EQ(seen.size(), assoc) << "set " << s;
    }
    EXPECT_TRUE(non_identity);
    EXPECT_TRUE(differ_across_sets);

    RandomPolicy q(sets, assoc, 21);
    for (unsigned s = 0; s < sets; ++s)
        for (unsigned w = 0; w < assoc; ++w)
            EXPECT_EQ(p.rank(s, w), q.rank(s, w));
}

TEST(Random, RankFixLeavesVictimStreamUnchanged)
{
    // The permutations draw from a separate RNG stream, so victim()
    // must consume exactly the draws it consumed before the fix —
    // checkpointed Random caches replay identically.
    RandomPolicy p(4, 8, 21);
    Rng expected(21);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(p.victim(0), expected.drawRange(8));
}

TEST(Lhd, InvalidatedWayIsMostEvictable)
{
    LhdPolicy p(4, 8, 7);
    for (unsigned w = 0; w < 8; ++w)
        p.onFill(1, w);
    p.onInvalidate(1, 5);
    EXPECT_EQ(p.victim(1), 5u);
    EXPECT_EQ(p.rank(1, 5), 0u);
}

TEST(Lhd, ExplorerSetsRankByAge)
{
    const unsigned sets = 64, assoc = 8;
    LhdPolicy p(sets, assoc, 7);
    unsigned explorer = sets;
    for (unsigned s = 0; s < sets; ++s) {
        if (p.isExplorer(s)) {
            explorer = s;
            break;
        }
    }
    ASSERT_LT(explorer, sets) << "no explorer set in " << sets;
    // Fills tick the event clock, so way 0 is the oldest block and
    // must be the explorer victim regardless of learned densities.
    for (unsigned w = 0; w < assoc; ++w)
        p.onFill(explorer, w);
    EXPECT_EQ(p.victim(explorer), 0u);
    EXPECT_EQ(p.rank(explorer, assoc - 1), assoc - 1u);
}

TEST(Lhd, LearnedDensityProtectsHotBlock)
{
    // Train on a non-explorer set: way 3 hits on every round while
    // the other ways churn through fills. Across reconfigurations the
    // hit histogram concentrates in the reused block's class, so its
    // predicted hit density must outrank the churned ways and victim()
    // must not pick it.
    const unsigned sets = 16, assoc = 8;
    LhdPolicy p(sets, assoc, 7);
    unsigned set = 0;
    while (p.isExplorer(set))
        ++set;
    for (unsigned w = 0; w < assoc; ++w)
        p.onFill(set, w);
    for (int i = 0; i < 40000; ++i) {
        p.onHit(set, 3);
        unsigned w = static_cast<unsigned>(i % (assoc - 1));
        if (w >= 3)
            ++w;
        p.onFill(set, w);
    }
    EXPECT_GT(p.eventClock(), 0u);
    EXPECT_NE(p.victim(set), 3u);
    EXPECT_GT(p.rank(set, 3), assoc / 2);
    // The churned ways never hit: their (class 0) learned density
    // cannot exceed the reused block's.
    EXPECT_GT(p.predictedDensity(set, 3), p.predictedDensity(set, 0));
}

TEST(Lhd, SnapshotRoundTripIsExact)
{
    const unsigned sets = 8, assoc = 8;
    LhdPolicy a(sets, assoc, 7);
    Rng r(99);
    for (int i = 0; i < 20000; ++i) {
        const unsigned set = static_cast<unsigned>(r.drawRange(sets));
        const unsigned way = static_cast<unsigned>(r.drawRange(assoc));
        switch (r.drawRange(3)) {
          case 0: a.onFill(set, way); break;
          case 1: a.onHit(set, way); break;
          case 2: a.onInvalidate(set, way); break;
        }
    }
    SnapshotWriter w;
    a.saveState(w);
    LhdPolicy b(sets, assoc, 7);
    SnapshotReader rd(w.bytes());
    b.loadState(rd);

    EXPECT_EQ(a.eventClock(), b.eventClock());
    for (unsigned s = 0; s < sets; ++s)
        for (unsigned way = 0; way < assoc; ++way)
            ASSERT_EQ(a.rank(s, way), b.rank(s, way));
    // The restored policy must continue identically, including across
    // the next reconfiguration.
    for (int i = 0; i < 20000; ++i) {
        const unsigned set = static_cast<unsigned>(r.drawRange(sets));
        const unsigned way = static_cast<unsigned>(r.drawRange(assoc));
        a.onFill(set, way);
        b.onFill(set, way);
        ASSERT_EQ(a.victim(set), b.victim(set)) << "iter " << i;
    }
}

TEST(Replacement, ZeroGeometryIsFatal)
{
    EXPECT_ERROR(makeReplacementPolicy(ReplacementKind::Lru, 0, 4),
                 ConfigError, "sets > 0");
    EXPECT_ERROR(makeReplacementPolicy(ReplacementKind::Lru, 4, 0),
                 ConfigError, "assoc > 0");
}
