/**
 * @file
 * Tests for the machine statistics report (sim/report.hh).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.hh"
#include "trace/zoo.hh"

using namespace pinte;

namespace
{

std::string
reportFor(MachineConfig m, const char *workload, InstCount insts)
{
    TraceGenerator gen(findWorkload(workload));
    System sys(m, {&gen});
    sys.warmup(5000);
    sys.runUntilCore0(insts);
    std::ostringstream os;
    printMachineReport(sys, os);
    return os.str();
}

} // namespace

TEST(Report, ContainsAllSections)
{
    const std::string r =
        reportFor(MachineConfig::scaled(), "450.soplex", 10000);
    EXPECT_NE(r.find("==== cores ===="), std::string::npos);
    EXPECT_NE(r.find("==== caches ===="), std::string::npos);
    EXPECT_NE(r.find("LLC ("), std::string::npos);
    EXPECT_NE(r.find("==== LLC occupancy ===="), std::string::npos);
    EXPECT_NE(r.find("==== DRAM ===="), std::string::npos);
    EXPECT_NE(r.find("row-buffer hit rate"), std::string::npos);
}

TEST(Report, PInteSectionOnlyWhenEnabled)
{
    const std::string without =
        reportFor(MachineConfig::scaled(), "450.soplex", 10000);
    EXPECT_EQ(without.find("==== PInTE ===="), std::string::npos);

    MachineConfig m = MachineConfig::scaled();
    m.pinte.pInduce = 0.2;
    const std::string with = reportFor(m, "450.soplex", 10000);
    EXPECT_NE(with.find("==== PInTE ===="), std::string::npos);
}

TEST(Report, ListsEveryCacheLevel)
{
    const std::string r =
        reportFor(MachineConfig::scaled(), "435.gromacs", 10000);
    EXPECT_NE(r.find("L1D.0"), std::string::npos);
    EXPECT_NE(r.find("L2.0"), std::string::npos);
}

TEST(Report, MultiCoreRowsPresent)
{
    TraceGenerator a(findWorkload("450.soplex"));
    TraceGenerator b(findWorkload("470.lbm"));
    System sys(MachineConfig::scaled(2), {&a, &b});
    sys.warmup(3000);
    sys.runUntilCore0(8000);
    std::ostringstream os;
    printMachineReport(sys, os);
    const std::string r = os.str();
    EXPECT_NE(r.find("L1D.1"), std::string::npos);
    EXPECT_NE(r.find("L2.1"), std::string::npos);
}

TEST(Report, EngineRowsMatchScope)
{
    MachineConfig m = MachineConfig::scaled();
    m.pinte.pInduce = 0.3;
    m.pinteScope = PInteScope::L2AndLlc;
    TraceGenerator gen(findWorkload("450.soplex"));
    System sys(m, {&gen});
    sys.warmup(3000);
    sys.runUntilCore0(8000);
    std::ostringstream os;
    printMachineReport(sys, os);
    // Two engines (LLC + the core's L2) -> rows "0" and "1" in the
    // PInTE table; crude but effective check on the row count.
    const std::string r = os.str();
    const auto pinte_at = r.find("==== PInTE ====");
    ASSERT_NE(pinte_at, std::string::npos);
    const std::string tail = r.substr(pinte_at);
    EXPECT_NE(tail.find("\n0  "), std::string::npos);
    EXPECT_NE(tail.find("\n1  "), std::string::npos);
}
