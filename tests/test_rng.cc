/**
 * @file
 * Tests for the deterministic RNG (common/rng.hh).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hh"

using namespace pinte;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, NearbySeedsGiveUnrelatedStreams)
{
    // splitmix64 seeding should decorrelate adjacent seeds.
    Rng a(100), b(101);
    double corr = 0;
    for (int i = 0; i < 1000; ++i)
        corr += (a.drawUnit() - 0.5) * (b.drawUnit() - 0.5);
    corr /= 1000;
    EXPECT_LT(std::abs(corr), 0.02);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(a.next());
    a.reseed(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, DrawUnitInHalfOpenInterval)
{
    Rng r(3);
    for (int i = 0; i < 100000; ++i) {
        const double u = r.drawUnit();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, DrawUnitMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.drawUnit();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, DrawRangeBounds)
{
    Rng r(5);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.drawRange(17), 17u);
}

TEST(Rng, DrawRangeZeroBound)
{
    Rng r(5);
    EXPECT_EQ(r.drawRange(0), 0u);
}

TEST(Rng, DrawRangeOneBound)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.drawRange(1), 0u);
}

TEST(Rng, DrawRangeCoversAllValues)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.drawRange(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DrawRangeRoughlyUniform)
{
    Rng r(13);
    const int buckets = 10, n = 100000;
    std::vector<int> count(buckets, 0);
    for (int i = 0; i < n; ++i)
        count[r.drawRange(buckets)]++;
    // Each bucket within 5% of expectation.
    for (int c : count)
        EXPECT_NEAR(c, n / buckets, n / buckets * 0.05);
}

TEST(Rng, DrawBetweenInclusive)
{
    Rng r(17);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.drawBetween(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        hit_lo |= (v == 3);
        hit_hi |= (v == 6);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, DrawBetweenDegenerate)
{
    Rng r(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.drawBetween(5, 5), 5u);
}

TEST(Rng, DrawBoolProbability)
{
    Rng r(23);
    const int n = 100000;
    int heads = 0;
    for (int i = 0; i < n; ++i)
        if (r.drawBool(0.3))
            ++heads;
    EXPECT_NEAR(heads / double(n), 0.3, 0.01);
}

TEST(Rng, DrawBoolExtremes)
{
    Rng r(29);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(r.drawBool(0.0));
        EXPECT_TRUE(r.drawBool(1.0));
    }
}

TEST(Rng, DrawExponentialMean)
{
    Rng r(31);
    const int n = 200000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.drawExponential(50.0, 100000));
    // Integer truncation shifts the mean down by ~0.5.
    EXPECT_NEAR(sum / n, 49.5, 1.5);
}

TEST(Rng, DrawExponentialCap)
{
    Rng r(37);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LE(r.drawExponential(1000.0, 64), 64u);
}

TEST(Rng, DrawExponentialZeroMean)
{
    Rng r(41);
    EXPECT_EQ(r.drawExponential(0.0, 100), 0u);
    EXPECT_EQ(r.drawExponential(-1.0, 100), 0u);
}
