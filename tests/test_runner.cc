/**
 * @file
 * Tests for the campaign runner (sim/runner.hh).
 *
 * The load-bearing property is determinism: a campaign executed with
 * jobs=4 must produce results bitwise-identical to the same campaign
 * executed with jobs=1, because every bench reduces its runs into the
 * paper's tables and figures and those must not depend on --jobs.
 */

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "trace/zoo.hh"

using namespace pinte;

namespace
{

/** Mini-campaign scale: big enough to exercise sampling and PInTE. */
ExperimentParams
miniParams()
{
    ExperimentParams p;
    p.warmup = 6000;
    p.roi = 6000;
    p.sampleEvery = 1000;
    return p;
}

/** Assert two run results are bitwise-equal, field by field.
 *  cpuSeconds is deliberately excluded: it is a timing measurement,
 *  not a simulation output, and varies run to run. */
void
expectEqualResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.contention, b.contention);

    const RunMetrics &m = a.metrics, &n = b.metrics;
    EXPECT_EQ(m.ipc, n.ipc);
    EXPECT_EQ(m.missRate, n.missRate);
    EXPECT_EQ(m.amat, n.amat);
    EXPECT_EQ(m.interferenceRate, n.interferenceRate);
    EXPECT_EQ(m.theftRate, n.theftRate);
    EXPECT_EQ(m.l2InterferenceRate, n.l2InterferenceRate);
    EXPECT_EQ(m.branchAccuracy, n.branchAccuracy);
    EXPECT_EQ(m.l1dMissRate, n.l1dMissRate);
    EXPECT_EQ(m.l2MissRate, n.l2MissRate);
    EXPECT_EQ(m.prefetchMissRate, n.prefetchMissRate);
    EXPECT_EQ(m.l2Mpki, n.l2Mpki);
    EXPECT_EQ(m.llcMpki, n.llcMpki);
    EXPECT_EQ(m.llcWbShare, n.llcWbShare);
    EXPECT_EQ(m.llcOccupancyFraction, n.llcOccupancyFraction);
    EXPECT_EQ(m.llcAccesses, n.llcAccesses);
    EXPECT_EQ(m.llcMisses, n.llcMisses);

    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        const Sample &s = a.samples[i], &t = b.samples[i];
        EXPECT_EQ(s.ipc, t.ipc);
        EXPECT_EQ(s.missRate, t.missRate);
        EXPECT_EQ(s.amat, t.amat);
        EXPECT_EQ(s.interferenceRate, t.interferenceRate);
        EXPECT_EQ(s.theftRate, t.theftRate);
        EXPECT_EQ(s.occupancyFraction, t.occupancyFraction);
        EXPECT_EQ(s.instructions, t.instructions);
    }

    EXPECT_EQ(a.reuse.counts(), b.reuse.counts());
    EXPECT_EQ(a.reuse.total(), b.reuse.total());

    EXPECT_EQ(a.pinte.accessesSeen, b.pinte.accessesSeen);
    EXPECT_EQ(a.pinte.triggers, b.pinte.triggers);
    EXPECT_EQ(a.pinte.promotions, b.pinte.promotions);
    EXPECT_EQ(a.pinte.invalidations, b.pinte.invalidations);
    EXPECT_EQ(a.pinte.requestedEvicts, b.pinte.requestedEvicts);
}

/** @name ExperimentSpec shorthands for the determinism campaign. */
/// @{
RunResult
isolation(const WorkloadSpec &spec, const MachineConfig &machine,
          const ExperimentParams &p)
{
    return ExperimentSpec(machine).workload(spec).params(p).run();
}

RunResult
pinteRun(const WorkloadSpec &spec, double p_induce,
         const MachineConfig &machine, const ExperimentParams &p)
{
    return ExperimentSpec(machine)
        .workload(spec)
        .pinte(p_induce)
        .params(p)
        .run();
}

std::pair<RunResult, RunResult>
pairRun(const WorkloadSpec &a, const WorkloadSpec &b,
        const MachineConfig &machine, const ExperimentParams &p)
{
    auto all = ExperimentSpec(machine)
                   .workload(a)
                   .secondTrace(b)
                   .params(p)
                   .runAll();
    return {std::move(all[0]), std::move(all[1])};
}
/// @}

} // namespace

TEST(Runner, PoolSizeDefaultsToAtLeastOne)
{
    EXPECT_GE(Runner(0).jobs(), 1u);
    EXPECT_EQ(Runner(1).jobs(), 1u);
    EXPECT_EQ(Runner(4).jobs(), 4u);
}

TEST(Runner, ForEachRunsEveryIndexExactlyOnce)
{
    const std::size_t n = 257; // not a multiple of the pool size
    std::vector<std::atomic<int>> hits(n);
    Runner(4).forEach(n, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Runner, MapReturnsResultsInSubmissionOrder)
{
    const std::size_t n = 100;
    const auto out = Runner(4).map(n, [](std::size_t i) {
        // Unbalanced work so completion order differs from
        // submission order.
        volatile std::size_t sink = 0;
        for (std::size_t k = 0; k < (n - i) * 1000; ++k)
            sink = sink + k;
        return i * 31 + 7;
    });
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * 31 + 7);
}

TEST(Runner, RunExecutesPrebuiltBatchInOrder)
{
    std::vector<std::function<int()>> batch;
    for (int i = 0; i < 37; ++i)
        batch.push_back([i] { return i * i; });
    const auto out = Runner(4).run(batch);
    ASSERT_EQ(out.size(), batch.size());
    for (int i = 0; i < 37; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(Runner, TickIsMonotoneReachesNAndRunsOnCallingThread)
{
    const std::thread::id caller = std::this_thread::get_id();
    for (unsigned jobs : {1u, 4u}) {
        std::vector<std::size_t> seen;
        Runner(jobs).forEach(
            64, [](std::size_t) {},
            [&](std::size_t done) {
                EXPECT_EQ(std::this_thread::get_id(), caller);
                seen.push_back(done);
            });
        ASSERT_FALSE(seen.empty());
        for (std::size_t i = 1; i < seen.size(); ++i)
            EXPECT_LT(seen[i - 1], seen[i]);
        EXPECT_EQ(seen.back(), 64u);
    }
}

TEST(Runner, SingleFailureRethrowsOriginalAndAllJobsStillRun)
{
    for (unsigned jobs : {1u, 4u}) {
        std::atomic<int> ran{0};
        try {
            Runner(jobs).forEach(64, [&](std::size_t i) {
                if (i == 5)
                    throw std::runtime_error("boom 5");
                ran++;
            });
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            // Exactly one failure: the original exception crosses the
            // batch boundary unchanged (type and message).
            EXPECT_STREQ(e.what(), "boom 5");
        }
        EXPECT_EQ(ran.load(), 63);
    }
}

TEST(Runner, MultipleFailuresAggregateAndAllJobsStillRun)
{
    for (unsigned jobs : {1u, 4u}) {
        std::atomic<int> ran{0};
        try {
            Runner(jobs).forEach(64, [&](std::size_t i) {
                if (i == 5)
                    throw std::runtime_error("boom 5");
                if (i == 40)
                    throw std::runtime_error("boom 40");
                ran++;
            });
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const MultiJobError &e) {
            // Deterministic regardless of which worker hit its
            // exception first: failures come back in index order.
            ASSERT_EQ(e.failures().size(), 2u);
            EXPECT_EQ(e.failures()[0].first, 5u);
            EXPECT_EQ(e.failures()[0].second, "boom 5");
            EXPECT_EQ(e.failures()[1].first, 40u);
            EXPECT_EQ(e.failures()[1].second, "boom 40");
            EXPECT_EQ(e.totalJobs(), 64u);
            EXPECT_NE(
                std::string(e.what()).find("2 of 64 jobs failed"),
                std::string::npos)
                << "message was: " << e.what();
        }
        EXPECT_EQ(ran.load(), 62);
    }
}

TEST(Runner, ZeroJobsIsANoOp)
{
    bool ticked = false;
    Runner(4).forEach(
        0, [](std::size_t) { FAIL() << "no jobs to run"; },
        [&](std::size_t) { ticked = true; });
    EXPECT_FALSE(ticked);
}

/**
 * The acceptance property: the same mini-campaign — all three
 * experiment families — produces bitwise-identical metrics, samples,
 * reuse histograms and PInTE counters at jobs=1 and jobs=4.
 */
TEST(RunnerDeterminism, MiniCampaignBitwiseEqualAcrossJobCounts)
{
    const MachineConfig machine = MachineConfig::scaled();
    const ExperimentParams params = miniParams();
    const std::vector<WorkloadSpec> zoo = {findWorkload("450.soplex"),
                                           findWorkload("429.mcf"),
                                           findWorkload("435.gromacs")};
    const double probs[] = {0.05, 0.2, 0.5};

    // Flat job bag: 3 isolation runs, then the 3x3 PInTE grid.
    const std::size_t nw = zoo.size(), np = std::size(probs);
    auto single = [&](const Runner &r) {
        return r.map(nw + nw * np, [&](std::size_t idx) {
            if (idx < nw)
                return isolation(zoo[idx], machine, params);
            const std::size_t w = (idx - nw) / np;
            const std::size_t p = (idx - nw) % np;
            return pinteRun(zoo[w], probs[p], machine, params);
        });
    };

    // 2nd-Trace family: every pair, both cores' results retained.
    MachineConfig two = machine;
    two.numCores = 2;
    auto pairs = [&](const Runner &r) {
        return r.map(3, [&](std::size_t idx) {
            const std::size_t i = idx == 2 ? 1 : 0;
            const std::size_t j = idx == 0 ? 1 : 2;
            return pairRun(zoo[i], zoo[j], two, params);
        });
    };

    const Runner serial(1), pooled(4);
    const auto s1 = single(serial), s4 = single(pooled);
    ASSERT_EQ(s1.size(), s4.size());
    for (std::size_t i = 0; i < s1.size(); ++i) {
        SCOPED_TRACE("single job " + std::to_string(i));
        expectEqualResult(s1[i], s4[i]);
    }

    const auto p1 = pairs(serial), p4 = pairs(pooled);
    ASSERT_EQ(p1.size(), p4.size());
    for (std::size_t i = 0; i < p1.size(); ++i) {
        SCOPED_TRACE("pair job " + std::to_string(i));
        expectEqualResult(p1[i].first, p4[i].first);
        expectEqualResult(p1[i].second, p4[i].second);
    }
}
