/**
 * @file
 * Report-sink tests: the JSON document shape is pinned by a golden
 * file, a JSON report parses back to bit-identical metric values, and
 * the registry-derived RunMetrics computation matches the legacy
 * struct-walking one on live systems.
 *
 * Regenerate the golden file after an intentional schema change with
 *   PINTE_REGOLD=1 ./test_sinks --gtest_filter=Sinks.JsonGoldenFile
 * and bump reportSchemaVersion.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hh"
#include "sim/experiment.hh"
#include "sim/sink.hh"

namespace pinte
{
namespace
{

/** A fully hand-built report input: deterministic by construction. */
RunResult
goldenRun()
{
    RunResult r;
    r.workload = "synthetic.golden";
    r.contention = "pinte@0.250000";
    r.metrics.ipc = 1.25;
    // Counters and rates satisfy the conservation identities
    // check_report.py enforces: miss_rate == llc_misses/llc_accesses.
    r.metrics.missRate = 0.125;
    r.metrics.amat = 42.5;
    r.metrics.interferenceRate = 0.03125;
    r.metrics.theftRate = 0.015625;
    r.metrics.l2InterferenceRate = 0.0;
    r.metrics.branchAccuracy = 0.9375;
    r.metrics.l1dMissRate = 0.2;
    r.metrics.l2MissRate = 0.3;
    r.metrics.prefetchMissRate = 0.4;
    r.metrics.l2Mpki = 12.5;
    r.metrics.llcMpki = 6.25;
    r.metrics.llcWbShare = 0.125;
    r.metrics.llcOccupancyFraction = 0.5;
    r.metrics.llcAccesses = 4096;
    r.metrics.llcMisses = 512;

    Sample s;
    s.ipc = 1.5;
    s.missRate = 0.25;
    s.amat = 40.0;
    s.interferenceRate = 0.0625;
    s.theftRate = 0.03125;
    s.occupancyFraction = 0.75;
    s.instructions = 3000;
    r.samples.push_back(s);
    s.ipc = 1.0 / 3.0; // exercises round-trip number printing
    s.instructions = 6000;
    r.samples.push_back(s);

    r.reuse = Histogram(4);
    r.reuse.add(0, 5);
    r.reuse.add(2, 1);

    r.pinte.accessesSeen = 1000;
    r.pinte.triggers = 250;
    r.pinte.promotions = 200;
    r.pinte.invalidations = 150;
    r.pinte.requestedEvicts = 300;

    // v3 observability payloads: two counters over three intervals
    // whose column sums equal the metrics' end-of-run values above
    // (4096 accesses, 512 misses — check_report.py cross-checks the
    // conservation identity), plus one log2 histogram whose bucket
    // counts sum to its total. A second all-zero histogram pins the
    // emit-side rule that empty histograms are dropped.
    r.timeseries.intervalCycles = 1024;
    r.timeseries.paths = {"llc.core0.accesses", "llc.core0.misses"};
    r.timeseries.cycles = {1024, 2048, 3072};
    r.timeseries.deltas = {{2048, 256}, {1024, 0}, {1024, 256}};
    HistogramData h;
    h.path = "llc.miss_latency";
    h.counts = {1, 0, 2, 5};
    h.total = 8;
    r.histograms.push_back(h);
    HistogramData empty;
    empty.path = "core0.mshr_occupancy";
    r.histograms.push_back(empty);

    r.cpuSeconds = 0.015625;
    return r;
}

/** A quarantined failure: identity plus error, no data. */
RunResult
goldenFailedRun()
{
    RunResult r;
    r.workload = "synthetic.poisoned";
    r.contention = "isolation";
    r.error.kind = "trace";
    r.error.component = "trace_io";
    r.error.path = "/tmp/poison.trc";
    r.error.message = "truncated trace /tmp/poison.trc";
    return r;
}

/**
 * A worker-level loss under --isolation=process (schema v5): the
 * error object additionally carries the terminating signal and the
 * full retry history.
 */
RunResult
goldenCrashedRun()
{
    RunResult r;
    r.workload = "synthetic.crashy";
    r.contention = "pinte@0.250000";
    r.error.kind = "worker";
    r.error.component = "worker_proc";
    r.error.message =
        "worker lost (killed by signal 6 (Aborted)) after 2 attempt(s)";
    r.error.signal = 6;
    r.error.exitCode = 0;
    r.error.attempts = 2;
    r.error.attemptLog = {"attempt 1: killed by signal 6 (Aborted)",
                          "attempt 2: killed by signal 6 (Aborted)"};
    return r;
}

/**
 * A broker-level loss under --isolation=spool (schema v6): the error
 * object additionally carries the losing shard id and the fencing
 * token it held when the retry budget ran out, alongside the v5 loss
 * record every worker-level loss carries.
 */
RunResult
goldenSpoolLostRun()
{
    RunResult r;
    r.workload = "synthetic.spooled";
    r.contention = "pinte@0.250000";
    r.error.kind = "worker";
    r.error.component = "broker";
    r.error.message =
        "shard s000007 lost after 2 attempt(s); cell quarantined "
        "(lease-ttl=30s)";
    r.error.signal = 0;
    r.error.exitCode = 0;
    r.error.attempts = 2;
    r.error.attemptLog = {
        "attempt 1: lease expired (token 1, pid 4242 on vm, ttl 30s)",
        "attempt 2: worker exited (token 2, pid 4243 on vm)"};
    r.error.shard = "s000007";
    r.error.fencingToken = 3;
    return r;
}

ReportMeta
goldenMeta()
{
    ExperimentParams params;
    params.warmup = 60000;
    params.roi = 60000;
    params.sampleEvery = 3000;
    params.runSeed = 7;
    return {"test_sinks", "golden-fingerprint", params};
}

std::string
emitGoldenJson()
{
    std::ostringstream os;
    {
        JsonSink sink(os, goldenMeta());
        sink.note("golden note");
        sink.note(""); // spacing hint: machine sinks must drop it
        sink.run(goldenRun());
        sink.run(goldenFailedRun());
        sink.run(goldenCrashedRun());
        sink.run(goldenSpoolLostRun());
        TableData t("golden_table", {"label", "count", "value"});
        t.addRow({"row-one", Cell::count(42), Cell::real(0.125, 3)});
        t.addRow({"row,two", Cell::count(0), Cell::pct(0.5, 1)});
        sink.table(t);
        sink.close();
    }
    return os.str();
}

TEST(Sinks, JsonGoldenFile)
{
    const std::string path = std::string(PINTE_TEST_DATA_DIR) +
                             "/golden/report_v" +
                             std::to_string(reportSchemaVersion) +
                             ".json";
    const std::string doc = emitGoldenJson();

    if (std::getenv("PINTE_REGOLD")) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << doc;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (regenerate with PINTE_REGOLD=1)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(doc, want.str())
        << "JSON report shape changed; if intentional, bump "
           "reportSchemaVersion and regenerate with PINTE_REGOLD=1";
}

TEST(Sinks, JsonRoundTrip)
{
    const RunResult r = goldenRun();
    const std::string doc = emitGoldenJson();

    std::string error;
    const JsonValue v = parseJson(doc, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_TRUE(v.isObject());

    EXPECT_EQ(v.at("schema").asString(), "pinte-report");
    EXPECT_EQ(v.at("schema_version").asU64(),
              static_cast<std::uint64_t>(reportSchemaVersion));
    EXPECT_EQ(v.at("tool").asString(), "test_sinks");

    const JsonValue &config = v.at("config");
    EXPECT_EQ(config.at("fingerprint").asString(),
              "golden-fingerprint");
    EXPECT_EQ(config.at("warmup").asU64(), 60000u);
    EXPECT_EQ(config.at("roi").asU64(), 60000u);
    EXPECT_EQ(config.at("sample_every").asU64(), 3000u);
    EXPECT_EQ(config.at("run_seed").asU64(), 7u);

    // The empty note was a layout hint and must not appear.
    ASSERT_EQ(v.at("notes").array.size(), 1u);
    EXPECT_EQ(v.at("notes").array[0].asString(), "golden note");

    ASSERT_EQ(v.at("runs").array.size(), 4u);
    const JsonValue &run = v.at("runs").array[0];
    EXPECT_EQ(run.at("workload").asString(), r.workload);
    EXPECT_EQ(run.at("contention").asString(), r.contention);
    EXPECT_EQ(run.at("status").asString(), "ok");

    // The quarantined run carries identity + error only — in
    // particular no "metrics" key a v1 consumer could mistake for
    // data — and the campaign-level summary counts it.
    const JsonValue &bad = v.at("runs").array[1];
    EXPECT_EQ(bad.at("workload").asString(), "synthetic.poisoned");
    EXPECT_EQ(bad.at("status").asString(), "failed");
    EXPECT_EQ(bad.find("metrics"), nullptr);
    EXPECT_EQ(bad.find("samples"), nullptr);
    const JsonValue &err = bad.at("error");
    EXPECT_EQ(err.at("kind").asString(), "trace");
    EXPECT_EQ(err.at("component").asString(), "trace_io");
    EXPECT_EQ(err.at("path").asString(), "/tmp/poison.trc");
    EXPECT_EQ(err.at("message").asString(),
              "truncated trace /tmp/poison.trc");
    // In-process failures keep the v2 error shape: no loss record.
    EXPECT_EQ(err.find("attempts"), nullptr);
    EXPECT_EQ(err.find("signal"), nullptr);

    // The worker-level loss (v5) carries the signal and retry
    // history, and both survive the runFromJson round trip.
    const JsonValue &crashed = v.at("runs").array[2];
    EXPECT_EQ(crashed.at("status").asString(), "failed");
    const JsonValue &loss = crashed.at("error");
    EXPECT_EQ(loss.at("kind").asString(), "worker");
    EXPECT_EQ(loss.at("component").asString(), "worker_proc");
    EXPECT_EQ(loss.at("signal").asU64(), 6u);
    EXPECT_EQ(loss.at("exit_code").asU64(), 0u);
    EXPECT_EQ(loss.at("attempts").asU64(), 2u);
    ASSERT_EQ(loss.at("attempt_log").array.size(), 2u);
    EXPECT_EQ(loss.at("attempt_log").array[0].asString(),
              "attempt 1: killed by signal 6 (Aborted)");
    const RunResult lost = runFromJson(crashed);
    EXPECT_TRUE(lost.failed());
    EXPECT_EQ(lost.error.signal, 6);
    EXPECT_EQ(lost.error.exitCode, 0);
    EXPECT_EQ(lost.error.attempts, 2u);
    EXPECT_EQ(lost.error.attemptLog,
              goldenCrashedRun().error.attemptLog);
    // A process-mode loss carries no spool provenance.
    EXPECT_EQ(loss.find("shard"), nullptr);
    EXPECT_EQ(loss.find("fencing_token"), nullptr);

    // The broker-level loss (v6) adds the shard/fencing-token pair on
    // top of the v5 loss record, and both survive the round trip.
    const JsonValue &spooled = v.at("runs").array[3];
    EXPECT_EQ(spooled.at("status").asString(), "failed");
    const JsonValue &sloss = spooled.at("error");
    EXPECT_EQ(sloss.at("component").asString(), "broker");
    EXPECT_EQ(sloss.at("shard").asString(), "s000007");
    EXPECT_EQ(sloss.at("fencing_token").asU64(), 3u);
    EXPECT_EQ(sloss.at("attempts").asU64(), 2u);
    ASSERT_EQ(sloss.at("attempt_log").array.size(), 2u);
    const RunResult slost = runFromJson(spooled);
    EXPECT_TRUE(slost.failed());
    EXPECT_EQ(slost.error.shard, "s000007");
    EXPECT_EQ(slost.error.fencingToken, 3u);
    EXPECT_EQ(slost.error.attempts, 2u);
    EXPECT_EQ(slost.error.attemptLog,
              goldenSpoolLostRun().error.attemptLog);

    const JsonValue &failures = v.at("failures");
    EXPECT_EQ(failures.at("failed").asU64(), 3u);
    EXPECT_EQ(failures.at("total").asU64(), 4u);

    // Metrics round-trip bit-identically (EXPECT_EQ, not NEAR).
    const JsonValue &m = run.at("metrics");
    EXPECT_EQ(m.at("ipc").asDouble(), r.metrics.ipc);
    EXPECT_EQ(m.at("miss_rate").asDouble(), r.metrics.missRate);
    EXPECT_EQ(m.at("amat").asDouble(), r.metrics.amat);
    EXPECT_EQ(m.at("interference_rate").asDouble(),
              r.metrics.interferenceRate);
    EXPECT_EQ(m.at("theft_rate").asDouble(), r.metrics.theftRate);
    EXPECT_EQ(m.at("l2_interference_rate").asDouble(),
              r.metrics.l2InterferenceRate);
    EXPECT_EQ(m.at("branch_accuracy").asDouble(),
              r.metrics.branchAccuracy);
    EXPECT_EQ(m.at("l1d_miss_rate").asDouble(), r.metrics.l1dMissRate);
    EXPECT_EQ(m.at("l2_miss_rate").asDouble(), r.metrics.l2MissRate);
    EXPECT_EQ(m.at("prefetch_miss_rate").asDouble(),
              r.metrics.prefetchMissRate);
    EXPECT_EQ(m.at("l2_mpki").asDouble(), r.metrics.l2Mpki);
    EXPECT_EQ(m.at("llc_mpki").asDouble(), r.metrics.llcMpki);
    EXPECT_EQ(m.at("llc_wb_share").asDouble(), r.metrics.llcWbShare);
    EXPECT_EQ(m.at("llc_occupancy_fraction").asDouble(),
              r.metrics.llcOccupancyFraction);
    EXPECT_EQ(m.at("llc_accesses").asU64(), r.metrics.llcAccesses);
    EXPECT_EQ(m.at("llc_misses").asU64(), r.metrics.llcMisses);

    // Samples — including the non-dyadic 1/3 IPC.
    ASSERT_EQ(run.at("samples").array.size(), r.samples.size());
    for (std::size_t i = 0; i < r.samples.size(); ++i) {
        const JsonValue &js = run.at("samples").array[i];
        const Sample &ss = r.samples[i];
        EXPECT_EQ(js.at("ipc").asDouble(), ss.ipc);
        EXPECT_EQ(js.at("miss_rate").asDouble(), ss.missRate);
        EXPECT_EQ(js.at("amat").asDouble(), ss.amat);
        EXPECT_EQ(js.at("interference_rate").asDouble(),
                  ss.interferenceRate);
        EXPECT_EQ(js.at("theft_rate").asDouble(), ss.theftRate);
        EXPECT_EQ(js.at("occupancy_fraction").asDouble(),
                  ss.occupancyFraction);
        EXPECT_EQ(js.at("instructions").asU64(), ss.instructions);
    }

    const JsonValue &reuse = run.at("reuse_histogram");
    ASSERT_EQ(reuse.array.size(), r.reuse.size());
    for (std::size_t i = 0; i < r.reuse.size(); ++i)
        EXPECT_EQ(reuse.array[i].asU64(), r.reuse.at(i));

    const JsonValue &p = run.at("pinte");
    EXPECT_EQ(p.at("accesses_seen").asU64(), r.pinte.accessesSeen);
    EXPECT_EQ(p.at("triggers").asU64(), r.pinte.triggers);
    EXPECT_EQ(p.at("promotions").asU64(), r.pinte.promotions);
    EXPECT_EQ(p.at("invalidations").asU64(), r.pinte.invalidations);
    EXPECT_EQ(p.at("requested_evicts").asU64(),
              r.pinte.requestedEvicts);
    EXPECT_EQ(run.at("cpu_seconds").asDouble(), r.cpuSeconds);

    // v3 observability payloads round-trip: the timeseries object
    // matches the synthetic input, and only the non-empty histogram
    // survives emission.
    const JsonValue &ts = run.at("timeseries");
    EXPECT_EQ(ts.at("interval_cycles").asU64(),
              r.timeseries.intervalCycles);
    ASSERT_EQ(ts.at("paths").array.size(), r.timeseries.paths.size());
    for (std::size_t i = 0; i < r.timeseries.paths.size(); ++i)
        EXPECT_EQ(ts.at("paths").array[i].asString(),
                  r.timeseries.paths[i]);
    ASSERT_EQ(ts.at("cycles").array.size(),
              r.timeseries.cycles.size());
    ASSERT_EQ(ts.at("deltas").array.size(),
              r.timeseries.deltas.size());
    for (std::size_t row = 0; row < r.timeseries.deltas.size(); ++row) {
        EXPECT_EQ(ts.at("cycles").array[row].asU64(),
                  r.timeseries.cycles[row]);
        const JsonValue &jrow = ts.at("deltas").array[row];
        ASSERT_EQ(jrow.array.size(), r.timeseries.deltas[row].size());
        for (std::size_t col = 0; col < jrow.array.size(); ++col)
            EXPECT_EQ(jrow.array[col].asU64(),
                      r.timeseries.deltas[row][col]);
    }
    const JsonValue &hists = run.at("histograms");
    ASSERT_EQ(hists.array.size(), 1u)
        << "all-zero histograms must be dropped";
    const JsonValue &h = hists.array[0];
    EXPECT_EQ(h.at("path").asString(), "llc.miss_latency");
    EXPECT_EQ(h.at("total").asU64(), 8u);
    ASSERT_EQ(h.at("counts").array.size(), 4u);
    std::uint64_t bucket_sum = 0;
    for (const JsonValue &c : h.at("counts").array)
        bucket_sum += c.asU64();
    EXPECT_EQ(bucket_sum, h.at("total").asU64());

    // A failed run never carries observability payloads.
    EXPECT_EQ(bad.find("timeseries"), nullptr);
    EXPECT_EQ(bad.find("histograms"), nullptr);

    // runFromJson restores the payloads structurally.
    const RunResult back = runFromJson(run);
    EXPECT_EQ(back.timeseries.intervalCycles,
              r.timeseries.intervalCycles);
    EXPECT_EQ(back.timeseries.paths, r.timeseries.paths);
    EXPECT_EQ(back.timeseries.cycles, r.timeseries.cycles);
    EXPECT_EQ(back.timeseries.deltas, r.timeseries.deltas);
    ASSERT_EQ(back.histograms.size(), 1u);
    EXPECT_EQ(back.histograms[0].path, "llc.miss_latency");
    EXPECT_EQ(back.histograms[0].total, 8u);
    EXPECT_EQ(back.histograms[0].counts, r.histograms[0].counts);

    // Typed table cells keep their raw values.
    ASSERT_EQ(v.at("tables").array.size(), 1u);
    const JsonValue &t = v.at("tables").array[0];
    EXPECT_EQ(t.at("name").asString(), "golden_table");
    ASSERT_EQ(t.at("rows").array.size(), 2u);
    EXPECT_EQ(t.at("rows").array[0].array[1].asU64(), 42u);
    EXPECT_EQ(t.at("rows").array[0].array[2].asDouble(), 0.125);
    EXPECT_EQ(t.at("rows").array[1].array[2].asDouble(), 0.5);
}

TEST(Sinks, CsvCarriesRunsAndTables)
{
    std::ostringstream os;
    {
        CsvSink sink(os, goldenMeta());
        sink.note("");
        sink.run(goldenRun());
        sink.run(goldenFailedRun());
        sink.run(goldenCrashedRun());
        TableData t("golden_table", {"label", "value"});
        t.addRow({"row,with,commas", Cell::real(0.5, 3)});
        sink.table(t);
        sink.close();
    }
    const std::string doc = os.str();
    EXPECT_NE(doc.find("# pinte-report v" +
                       std::to_string(reportSchemaVersion)),
              std::string::npos);
    EXPECT_NE(doc.find("workload,contention,status,ipc"),
              std::string::npos);
    EXPECT_NE(doc.find("synthetic.golden"), std::string::npos);
    EXPECT_NE(doc.find(",ok,"), std::string::npos);
    EXPECT_NE(doc.find("synthetic.poisoned,isolation,failed,"),
              std::string::npos);
    EXPECT_NE(doc.find("truncated trace /tmp/poison.trc"),
              std::string::npos);
    // A worker-level loss flattens to its kind + message; the CSV
    // shape (column list) is unchanged by schema v5.
    EXPECT_NE(doc.find("synthetic.crashy,pinte@0.250000,failed,"),
              std::string::npos);
    EXPECT_NE(doc.find(",worker,"), std::string::npos);
    EXPECT_NE(
        doc.find("worker lost (killed by signal 6 (Aborted)) after "
                 "2 attempt(s)"),
        std::string::npos);
    EXPECT_NE(doc.find("\"row,with,commas\""), std::string::npos);
    EXPECT_EQ(doc.find("# note:"), std::string::npos)
        << "empty note must be dropped by machine sinks";

    // v3 wide sections: the timeseries block carries its interval and
    // per-path header, the non-empty histogram gets a bucket table
    // with log2 lower bounds, and the all-zero histogram is dropped.
    EXPECT_NE(doc.find("# timeseries: synthetic.golden vs "
                       "pinte@0.250000 interval 1024"),
              std::string::npos);
    EXPECT_NE(doc.find("cycle,llc.core0.accesses,llc.core0.misses"),
              std::string::npos);
    EXPECT_NE(doc.find("1024,2048,256"), std::string::npos);
    EXPECT_NE(doc.find("3072,1024,256"), std::string::npos);
    EXPECT_NE(doc.find("# histogram: llc.miss_latency total 8"),
              std::string::npos);
    EXPECT_NE(doc.find("bucket,low,count"), std::string::npos);
    EXPECT_NE(doc.find("3,4,5"), std::string::npos);
    EXPECT_EQ(doc.find("core0.mshr_occupancy"), std::string::npos)
        << "all-zero histograms must be dropped";
}

/**
 * The acceptance check for the registry refactor: the registry-derived
 * aggregation must be bit-identical to the legacy struct-walking one
 * on live, finished systems — isolation, PInTE and pair runs.
 */
void
expectMetricsEqual(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.missRate, b.missRate);
    EXPECT_EQ(a.amat, b.amat);
    EXPECT_EQ(a.interferenceRate, b.interferenceRate);
    EXPECT_EQ(a.theftRate, b.theftRate);
    EXPECT_EQ(a.l2InterferenceRate, b.l2InterferenceRate);
    EXPECT_EQ(a.branchAccuracy, b.branchAccuracy);
    EXPECT_EQ(a.l1dMissRate, b.l1dMissRate);
    EXPECT_EQ(a.l2MissRate, b.l2MissRate);
    EXPECT_EQ(a.prefetchMissRate, b.prefetchMissRate);
    EXPECT_EQ(a.l2Mpki, b.l2Mpki);
    EXPECT_EQ(a.llcMpki, b.llcMpki);
    EXPECT_EQ(a.llcWbShare, b.llcWbShare);
    EXPECT_EQ(a.llcOccupancyFraction, b.llcOccupancyFraction);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
}

TEST(Sinks, RegistryMatchesLegacyIsolation)
{
    MachineConfig machine = MachineConfig::scaled();
    TraceGenerator gen(findWorkload("450.soplex"));
    System sys(machine, {&gen});
    sys.warmup(2000);
    sys.runUntilCore0(6000);
    expectMetricsEqual(computeRunMetrics(sys, 0),
                       computeRunMetricsLegacy(sys, 0));
}

TEST(Sinks, RegistryMatchesLegacyPInte)
{
    MachineConfig machine = MachineConfig::scaled();
    machine.pinte.pInduce = 0.3;
    TraceGenerator gen(findWorkload("429.mcf"));
    System sys(machine, {&gen});
    sys.warmup(2000);
    sys.runUntilCore0(6000);
    expectMetricsEqual(computeRunMetrics(sys, 0),
                       computeRunMetricsLegacy(sys, 0));
}

TEST(Sinks, RegistryMatchesLegacyPair)
{
    MachineConfig machine = MachineConfig::scaled();
    machine.numCores = 2;
    WorkloadSpec peer = findWorkload("470.lbm");
    peer.dataBase += 0x800000000ull;
    peer.codeBase += 0x40000000ull;
    TraceGenerator ga(findWorkload("450.soplex")), gb(peer);
    System sys(machine, {&ga, &gb});
    sys.warmup(2000);
    sys.runUntilCore0(6000);
    for (unsigned c = 0; c < 2; ++c)
        expectMetricsEqual(computeRunMetrics(sys, c),
                           computeRunMetricsLegacy(sys, c));
}

} // namespace
} // namespace pinte
