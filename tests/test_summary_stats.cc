/**
 * @file
 * Tests for SummaryStats (common/summary_stats.hh) — backs eq. 3 and
 * the paper's boxplots.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/summary_stats.hh"

using namespace pinte;

TEST(SummaryStats, EmptyInputYieldsZeros)
{
    const SummaryStats s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
    EXPECT_EQ(s.stddev, 0.0);
}

TEST(SummaryStats, SingleValue)
{
    const SummaryStats s = summarize({42.0});
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.mean, 42.0);
    EXPECT_EQ(s.stddev, 0.0);
    EXPECT_EQ(s.min, 42.0);
    EXPECT_EQ(s.max, 42.0);
    EXPECT_EQ(s.median, 42.0);
}

TEST(SummaryStats, KnownMoments)
{
    const SummaryStats s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                      7.0, 9.0});
    EXPECT_NEAR(s.mean, 5.0, 1e-12);
    EXPECT_NEAR(s.stddev, 2.0, 1e-12); // classic population-stddev set
}

TEST(SummaryStats, MinMaxMedian)
{
    const SummaryStats s = summarize({3.0, 1.0, 2.0});
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 3.0);
    EXPECT_EQ(s.median, 2.0);
}

TEST(SummaryStats, MedianEvenCountInterpolates)
{
    const SummaryStats s = summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_NEAR(s.median, 2.5, 1e-12);
}

TEST(SummaryStats, Quartiles)
{
    const SummaryStats s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_NEAR(s.q1, 2.0, 1e-12);
    EXPECT_NEAR(s.q3, 4.0, 1e-12);
}

TEST(SummaryStats, NormStddevIsEquationThree)
{
    const SummaryStats s = summarize({9.0, 11.0});
    // mean 10, stddev 1 -> normalized 0.1
    EXPECT_NEAR(s.normStddev(), 0.1, 1e-12);
}

TEST(SummaryStats, NormStddevZeroMeanStaysFinite)
{
    const SummaryStats s = summarize({-1.0, 1.0});
    EXPECT_EQ(s.normStddev(), 0.0);
}

TEST(SummaryStats, ConstantVectorHasZeroSpread)
{
    const SummaryStats s = summarize({5.0, 5.0, 5.0, 5.0});
    EXPECT_EQ(s.stddev, 0.0);
    EXPECT_EQ(s.normStddev(), 0.0);
    EXPECT_EQ(s.q1, 5.0);
    EXPECT_EQ(s.q3, 5.0);
}

TEST(Mean, Basics)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_NEAR(mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
}

TEST(Percentile, Endpoints)
{
    EXPECT_EQ(percentile({1.0, 2.0, 3.0}, 0.0), 1.0);
    EXPECT_EQ(percentile({1.0, 2.0, 3.0}, 100.0), 3.0);
}

TEST(Percentile, OutOfRangeClamps)
{
    EXPECT_EQ(percentile({1.0, 2.0}, -5.0), 1.0);
    EXPECT_EQ(percentile({1.0, 2.0}, 150.0), 2.0);
}

TEST(Percentile, InterpolatesLinearly)
{
    EXPECT_NEAR(percentile({0.0, 10.0}, 25.0), 2.5, 1e-12);
    EXPECT_NEAR(percentile({0.0, 10.0}, 75.0), 7.5, 1e-12);
}

TEST(Percentile, UnsortedInputHandled)
{
    EXPECT_NEAR(percentile({9.0, 1.0, 5.0}, 50.0), 5.0, 1e-12);
}

TEST(Percentile, EmptyInput)
{
    EXPECT_EQ(percentile({}, 50.0), 0.0);
}
