/**
 * @file
 * Integration tests: full machine wiring, the experiment runner, and
 * the end-to-end behaviors the paper's methodology depends on.
 */

#include <gtest/gtest.h>

#include "expect_error.hh"

#include <cstdio>

#include "sim/experiment.hh"
#include "trace/trace_io.hh"

using namespace pinte;

namespace
{

ExperimentParams
quick()
{
    ExperimentParams p;
    p.warmup = 5000;
    p.roi = 15000;
    p.sampleEvery = 3000;
    return p;
}

/** @name ExperimentSpec shorthands for the recurring shapes below. */
/// @{
RunResult
isolation(const WorkloadSpec &spec, MachineConfig machine,
          const ExperimentParams &p)
{
    return ExperimentSpec(std::move(machine))
        .workload(spec)
        .params(p)
        .run();
}

RunResult
pinteRun(const WorkloadSpec &spec, double p_induce,
         MachineConfig machine, const ExperimentParams &p)
{
    return ExperimentSpec(std::move(machine))
        .workload(spec)
        .pinte(p_induce)
        .params(p)
        .run();
}

std::pair<RunResult, RunResult>
pairRun(const WorkloadSpec &a, const WorkloadSpec &b,
        MachineConfig machine, const ExperimentParams &p)
{
    auto all = ExperimentSpec(std::move(machine))
                   .workload(a)
                   .secondTrace(b)
                   .params(p)
                   .runAll();
    return {std::move(all[0]), std::move(all[1])};
}

std::vector<RunResult>
mixRun(const std::vector<WorkloadSpec> &specs, MachineConfig machine,
       const ExperimentParams &p)
{
    return ExperimentSpec(std::move(machine))
        .mix(specs)
        .params(p)
        .runAll();
}
/// @}

} // namespace

TEST(System, WiresRequestedCoreCount)
{
    TraceGenerator a(findWorkload("435.gromacs"));
    TraceGenerator b(findWorkload("400.perlbench"));
    System sys(MachineConfig::scaled(2), {&a, &b});
    EXPECT_EQ(sys.numCores(), 2u);
}

TEST(System, SourceCountMustMatchCores)
{
    TraceGenerator a(findWorkload("435.gromacs"));
    EXPECT_ERROR(System(MachineConfig::scaled(2), {&a}), ConfigError,
                 "one trace source per core");
}

TEST(System, PInteInstalledOnlyWhenEnabled)
{
    TraceGenerator a(findWorkload("435.gromacs"));
    System off(MachineConfig::scaled(1), {&a});
    EXPECT_EQ(off.pinte(), nullptr);

    TraceGenerator b(findWorkload("435.gromacs"));
    MachineConfig cfg = MachineConfig::scaled(1);
    cfg.pinte.pInduce = 0.1;
    System on(cfg, {&b});
    EXPECT_NE(on.pinte(), nullptr);
}

TEST(System, WarmupClearsStatsButKeepsCacheContents)
{
    TraceGenerator a(findWorkload("435.gromacs"));
    System sys(MachineConfig::scaled(1), {&a});
    sys.warmup(5000);
    EXPECT_EQ(sys.core(0).stats().instructions, 0u);
    EXPECT_GT(sys.core(0).retired(), 4999u);
    EXPECT_GT(sys.llc().occupancy(0), 0u); // warm contents survive
}

TEST(Experiment, IsolationRunProducesSaneMetrics)
{
    const RunResult r =
        isolation(findWorkload("435.gromacs"),
                     MachineConfig::scaled(), quick());
    EXPECT_GT(r.metrics.ipc, 0.05);
    EXPECT_LT(r.metrics.ipc, 4.0);
    EXPECT_GE(r.metrics.missRate, 0.0);
    EXPECT_LE(r.metrics.missRate, 1.0);
    EXPECT_GE(r.metrics.amat, 4.0); // bounded below by L1 latency
    EXPECT_EQ(r.samples.size(), 5u);
    EXPECT_EQ(r.contention, "isolation");
    EXPECT_GT(r.cpuSeconds, 0.0);
}

TEST(Experiment, IsolationIsDeterministic)
{
    const auto spec = findWorkload("450.soplex");
    const RunResult a = isolation(spec, MachineConfig::scaled(),
                                     quick());
    const RunResult b = isolation(spec, MachineConfig::scaled(),
                                     quick());
    EXPECT_EQ(a.metrics.ipc, b.metrics.ipc);
    EXPECT_EQ(a.metrics.llcMisses, b.metrics.llcMisses);
}

TEST(Experiment, PInteDegradesLlcBoundWorkload)
{
    const auto spec = findWorkload("450.soplex");
    const MachineConfig m = MachineConfig::scaled();
    const RunResult iso = isolation(spec, m, quick());
    const RunResult contended = pinteRun(spec, 0.3, m, quick());
    const double w = weightedIpc(contended.metrics.ipc, iso.metrics.ipc);
    EXPECT_LT(w, 0.9);
    EXPECT_GT(contended.metrics.interferenceRate, 0.1);
    EXPECT_GT(contended.pinte.invalidations, 0u);
}

TEST(Experiment, PInteBarelyTouchesCoreBoundWorkload)
{
    const auto spec = findWorkload("648.exchange2");
    const MachineConfig m = MachineConfig::scaled();
    const RunResult iso = isolation(spec, m, quick());
    const RunResult contended = pinteRun(spec, 0.3, m, quick());
    const double w = weightedIpc(contended.metrics.ipc, iso.metrics.ipc);
    EXPECT_GT(w, 0.97);
}

TEST(Experiment, PInteContentionGrowsWithPInduce)
{
    const auto spec = findWorkload("471.omnetpp");
    const MachineConfig m = MachineConfig::scaled();
    double prev_rate = -1.0;
    for (double p : {0.01, 0.1, 0.4}) {
        const RunResult r = pinteRun(spec, p, m, quick());
        EXPECT_GT(r.metrics.interferenceRate, prev_rate);
        prev_rate = r.metrics.interferenceRate;
    }
}

TEST(Experiment, PairCausesMutualThefts)
{
    const auto [ra, rb] =
        pairRun(findWorkload("450.soplex"), findWorkload("471.omnetpp"),
                MachineConfig::scaled(2), quick());
    EXPECT_GT(ra.metrics.interferenceRate, 0.0);
    EXPECT_GT(rb.metrics.interferenceRate, 0.0);
    EXPECT_GT(ra.metrics.theftRate, 0.0);
    EXPECT_GT(rb.metrics.theftRate, 0.0);
    EXPECT_EQ(ra.contention, "471.omnetpp");
    EXPECT_EQ(rb.contention, "450.soplex");
}

TEST(Experiment, PairDegradesBothLlcBoundWorkloads)
{
    const MachineConfig m1 = MachineConfig::scaled();
    const auto soplex = findWorkload("450.soplex");
    const auto omnetpp = findWorkload("471.omnetpp");
    const RunResult iso_a = isolation(soplex, m1, quick());
    const RunResult iso_b = isolation(omnetpp, m1, quick());
    const auto [ra, rb] =
        pairRun(soplex, omnetpp, MachineConfig::scaled(2), quick());
    EXPECT_LT(weightedIpc(ra.metrics.ipc, iso_a.metrics.ipc), 1.0);
    EXPECT_LT(weightedIpc(rb.metrics.ipc, iso_b.metrics.ipc), 1.0);
}

TEST(Experiment, CoreBoundPairInterferesLittle)
{
    const auto [ra, rb] =
        pairRun(findWorkload("648.exchange2"),
                findWorkload("416.gamess"), MachineConfig::scaled(2),
                quick());
    EXPECT_LT(ra.metrics.interferenceRate, 0.05);
    EXPECT_LT(rb.metrics.interferenceRate, 0.05);
}

TEST(Experiment, ReuseHistogramPopulatedForCacheResident)
{
    const RunResult r = isolation(findWorkload("435.gromacs"),
                                     MachineConfig::scaled(), quick());
    EXPECT_GT(r.reuse.total(), 0u);
    EXPECT_EQ(r.reuse.size(), 16u);
}

TEST(Experiment, SamplesCoverRoi)
{
    ExperimentParams p = quick();
    p.roi = 10000;
    p.sampleEvery = 3000;
    const RunResult r = isolation(findWorkload("435.gromacs"),
                                     MachineConfig::scaled(), p);
    // ceil(10000/3000) = 4 samples; instruction counts sum to the ROI
    // up to the last quantum's overshoot (a few instructions).
    EXPECT_EQ(r.samples.size(), 4u);
    InstCount total = 0;
    for (const auto &s : r.samples)
        total += s.instructions;
    EXPECT_GE(total, 10000u);
    EXPECT_LE(total, 10200u); // a few quanta of overshoot at most
}

TEST(Experiment, RunSeedVariesPInteEventsNotWorkload)
{
    const auto spec = findWorkload("450.soplex");
    const MachineConfig m = MachineConfig::scaled();
    ExperimentParams p1 = quick(), p2 = quick();
    p2.runSeed = 99;
    const RunResult a = pinteRun(spec, 0.2, m, p1);
    const RunResult b = pinteRun(spec, 0.2, m, p2);
    // Different seeds, statistically equal behavior (Fig 3).
    EXPECT_NE(a.pinte.triggers, b.pinte.triggers);
    EXPECT_NEAR(a.metrics.ipc, b.metrics.ipc, 0.15 * a.metrics.ipc);
}

TEST(Experiment, DramBoundWorkloadShowsPaperSignature)
{
    // Section IV-E2: DRAM-bound workloads barely respond to PInTE
    // because their AMAT already sits at DRAM latency.
    const auto spec = findWorkload("429.mcf");
    const MachineConfig m = MachineConfig::scaled();
    const RunResult iso = isolation(spec, m, quick());
    EXPECT_GT(iso.metrics.amat, 100.0);
    EXPECT_GT(iso.metrics.missRate, 0.5);
    const RunResult r = pinteRun(spec, 0.4, m, quick());
    EXPECT_GT(weightedIpc(r.metrics.ipc, iso.metrics.ipc), 0.85);
}

TEST(Experiment, ServerProxyHasLargerLlc)
{
    const MachineConfig base = MachineConfig::scaled();
    const MachineConfig server = MachineConfig::serverProxy(2, true);
    EXPECT_GT(server.llc.bytes(), base.llc.bytes());
    EXPECT_LT(server.dram.channels, base.dram.channels + 1);
}

TEST(Experiment, WayMaskedLlcIsolatesCores)
{
    // RDT-style partitioning (Fig 10 real-system proxy): disjoint way
    // masks must suppress inter-core thefts entirely.
    TraceGenerator a(findWorkload("450.soplex"));
    TraceGenerator b(findWorkload("471.omnetpp"));
    System sys(MachineConfig::scaled(2), {&a, &b});
    sys.llc().setWayMask(0, 0x00ff);
    sys.llc().setWayMask(1, 0xff00);
    sys.warmup(3000);
    sys.runUntilCore0(10000);
    EXPECT_EQ(sys.llc().stats().perCore[0].theftsSuffered, 0u);
    EXPECT_EQ(sys.llc().stats().perCore[1].theftsSuffered, 0u);
}

TEST(Experiment, PrefetchConfigsRunEndToEnd)
{
    const auto spec = findWorkload("470.lbm");
    for (const char *cfg_str : {"000", "NN0", "NNN", "NNI"}) {
        MachineConfig m = MachineConfig::scaled();
        m.prefetch = PrefetchConfig::parse(cfg_str);
        const RunResult r = isolation(spec, m, quick());
        EXPECT_GT(r.metrics.ipc, 0.0) << cfg_str;
    }
}

TEST(Experiment, NextLinePrefetchHelpsStreaming)
{
    const auto spec = findWorkload("470.lbm");
    MachineConfig none = MachineConfig::scaled();
    MachineConfig nn = MachineConfig::scaled();
    nn.prefetch = PrefetchConfig::parse("NNN");
    const RunResult r_none = isolation(spec, none, quick());
    const RunResult r_nn = isolation(spec, nn, quick());
    EXPECT_GT(r_nn.metrics.ipc, r_none.metrics.ipc);
}

TEST(Experiment, InclusionPoliciesRunEndToEnd)
{
    const auto spec = findWorkload("450.soplex");
    for (InclusionPolicy inc :
         {InclusionPolicy::NonInclusive, InclusionPolicy::Inclusive,
          InclusionPolicy::Exclusive}) {
        MachineConfig m = MachineConfig::scaled();
        m.llc.inclusion = inc;
        const RunResult r = isolation(spec, m, quick());
        EXPECT_GT(r.metrics.ipc, 0.0) << toString(inc);
    }
}

TEST(Experiment, PairIsDeterministic)
{
    const auto a = findWorkload("450.soplex");
    const auto b = findWorkload("470.lbm");
    const auto [r1a, r1b] =
        pairRun(a, b, MachineConfig::scaled(2), quick());
    const auto [r2a, r2b] =
        pairRun(a, b, MachineConfig::scaled(2), quick());
    EXPECT_EQ(r1a.metrics.ipc, r2a.metrics.ipc);
    EXPECT_EQ(r1b.metrics.ipc, r2b.metrics.ipc);
    EXPECT_EQ(r1a.metrics.llcMisses, r2a.metrics.llcMisses);
}

TEST(Experiment, PairOrderSwapsResults)
{
    // (a, b) and (b, a) must describe the same physical co-run from
    // the two perspectives: similar (not necessarily identical —
    // address offsets differ) contention outcomes.
    const auto a = findWorkload("450.soplex");
    const auto b = findWorkload("471.omnetpp");
    const auto [ab_a, ab_b] =
        pairRun(a, b, MachineConfig::scaled(2), quick());
    const auto [ba_b, ba_a] =
        pairRun(b, a, MachineConfig::scaled(2), quick());
    EXPECT_NEAR(ab_a.metrics.ipc, ba_a.metrics.ipc,
                0.2 * ab_a.metrics.ipc);
    EXPECT_NEAR(ab_b.metrics.ipc, ba_b.metrics.ipc,
                0.2 * ab_b.metrics.ipc);
}

TEST(Experiment, MixRunsThreeWorkloads)
{
    const std::vector<WorkloadSpec> mix = {
        findWorkload("450.soplex"), findWorkload("471.omnetpp"),
        findWorkload("470.lbm")};
    const auto results = mixRun(mix, MachineConfig::scaled(), quick());
    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        EXPECT_GT(r.metrics.ipc, 0.0);
        EXPECT_EQ(r.contention, "mix-of-3");
        EXPECT_FALSE(r.samples.empty());
    }
    // Three LLC-hungry workloads on a 64KB LLC: everyone suffers.
    for (const auto &r : results)
        EXPECT_GT(r.metrics.interferenceRate, 0.0) << r.workload;
}

TEST(Experiment, MixOfTwoMatchesPairShape)
{
    const auto soplex = findWorkload("450.soplex");
    const auto omnetpp = findWorkload("471.omnetpp");
    const auto mix =
        mixRun({soplex, omnetpp}, MachineConfig::scaled(2), quick());
    const auto [pa, pb] =
        pairRun(soplex, omnetpp, MachineConfig::scaled(2), quick());
    // Same machine, same offsets: identical simulations.
    EXPECT_EQ(mix[0].metrics.ipc, pa.metrics.ipc);
    EXPECT_EQ(mix[1].metrics.ipc, pb.metrics.ipc);
}

TEST(Experiment, BiggerMixesHurtMore)
{
    const auto soplex = findWorkload("450.soplex");
    const RunResult iso =
        isolation(soplex, MachineConfig::scaled(), quick());
    const auto two = mixRun({soplex, findWorkload("470.lbm")},
                            MachineConfig::scaled(), quick());
    const auto four =
        mixRun({soplex, findWorkload("470.lbm"),
                findWorkload("471.omnetpp"), findWorkload("429.mcf")},
               MachineConfig::scaled(), quick());
    const double w2 = weightedIpc(two[0].metrics.ipc, iso.metrics.ipc);
    const double w4 = weightedIpc(four[0].metrics.ipc, iso.metrics.ipc);
    EXPECT_LT(w4, w2);
}

TEST(Experiment, EmptyMixIsFatal)
{
    EXPECT_ERROR(mixRun({}, MachineConfig::scaled(), quick()),
                 ConfigError, "at least one workload");
}

TEST(Experiment, FileTraceDrivesSystemIdentically)
{
    // A trace cached to disk must reproduce the generator-driven run
    // exactly — the TraceSource abstraction is airtight.
    const auto spec = findWorkload("435.gromacs");
    const ExperimentParams p = quick();
    const InstCount budget = p.warmup + p.roi + 4096;

    const std::string path = ::testing::TempDir() + "sysdrive.trc";
    TraceGenerator writer(spec);
    writeTrace(path, writer, budget);

    TraceGenerator direct(spec);
    FileTraceSource from_file(path);

    MachineConfig m = MachineConfig::scaled();
    System a(m, {&direct});
    System b(m, {&from_file});
    a.warmup(p.warmup);
    b.warmup(p.warmup);
    a.runUntilCore0(p.roi);
    b.runUntilCore0(p.roi);

    EXPECT_EQ(a.core(0).stats().ipc(), b.core(0).stats().ipc());
    EXPECT_EQ(a.llc().stats().perCore[0].misses,
              b.llc().stats().perCore[0].misses);
    std::remove(path.c_str());
}

class SystemPolicySweep
    : public ::testing::TestWithParam<ReplacementKind>
{
};

TEST_P(SystemPolicySweep, FullMachineRunsWithEveryLlcPolicy)
{
    MachineConfig m = MachineConfig::scaled();
    m.llc.replacement = GetParam();
    const RunResult r =
        pinteRun(findWorkload("450.soplex"), 0.2, m, quick());
    EXPECT_GT(r.metrics.ipc, 0.0);
    EXPECT_GT(r.pinte.invalidations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SystemPolicySweep,
    ::testing::Values(ReplacementKind::Lru, ReplacementKind::PseudoLru,
                      ReplacementKind::Nmru, ReplacementKind::Rrip),
    [](const auto &info) { return std::string(toString(info.param)); });

class SystemBranchSweep
    : public ::testing::TestWithParam<BranchPredictorKind>
{
};

TEST_P(SystemBranchSweep, FullMachineRunsWithEveryPredictor)
{
    MachineConfig m = MachineConfig::scaled();
    m.core.predictor = GetParam();
    const RunResult r = isolation(findWorkload("445.gobmk"), m,
                                     quick());
    EXPECT_GT(r.metrics.ipc, 0.0);
    EXPECT_GT(r.metrics.branchAccuracy, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllPredictors, SystemBranchSweep,
    ::testing::Values(BranchPredictorKind::Bimodal,
                      BranchPredictorKind::GShare,
                      BranchPredictorKind::Perceptron,
                      BranchPredictorKind::HashedPerceptron),
    [](const auto &info) {
        std::string n = toString(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });
