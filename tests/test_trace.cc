/**
 * @file
 * Tests for the trace substrate: generator determinism, pattern
 * properties, the SPEC-like zoo, and trace file I/O.
 */

#include <gtest/gtest.h>

#include "expect_error.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "trace/generator.hh"
#include "trace/trace_io.hh"
#include "trace/zoo.hh"

using namespace pinte;

namespace
{

WorkloadSpec
tinySpec()
{
    WorkloadSpec s;
    s.name = "tiny";
    s.seed = 5;
    s.footprintLines = 64;
    s.hotLines = 8;
    return s;
}

} // namespace

TEST(TraceGenerator, DeterministicForSameSeed)
{
    TraceGenerator a(tinySpec()), b(tinySpec());
    for (int i = 0; i < 5000; ++i) {
        const TraceRecord ra = a.next();
        const TraceRecord rb = b.next();
        ASSERT_EQ(ra.ip, rb.ip);
        ASSERT_EQ(ra.numLoads, rb.numLoads);
        ASSERT_EQ(ra.loadAddr[0], rb.loadAddr[0]);
        ASSERT_EQ(ra.isBranch, rb.isBranch);
        ASSERT_EQ(ra.branchTaken, rb.branchTaken);
    }
}

TEST(TraceGenerator, RunSeedPerturbsStream)
{
    TraceGenerator a(tinySpec(), 0), b(tinySpec(), 1);
    int diff = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next().loadAddr[0] != b.next().loadAddr[0])
            ++diff;
    }
    EXPECT_GT(diff, 0);
}

TEST(TraceGenerator, ResetReproducesStream)
{
    TraceGenerator g(tinySpec());
    std::vector<Addr> first;
    for (int i = 0; i < 1000; ++i)
        first.push_back(g.next().ip);
    g.reset();
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(g.next().ip, first[i]);
    EXPECT_EQ(g.generated(), 1000u);
}

TEST(TraceGenerator, LoadsStayInsideFootprint)
{
    WorkloadSpec s = tinySpec();
    TraceGenerator g(s);
    const Addr lo = s.dataBase;
    const Addr hi = s.dataBase + s.footprintLines * blockSize;
    for (int i = 0; i < 20000; ++i) {
        const TraceRecord r = g.next();
        for (unsigned l = 0; l < r.numLoads; ++l) {
            ASSERT_GE(r.loadAddr[l], lo);
            ASSERT_LT(r.loadAddr[l], hi);
        }
        for (unsigned st = 0; st < r.numStores; ++st) {
            ASSERT_GE(r.storeAddr[st], lo);
            ASSERT_LT(r.storeAddr[st], hi);
        }
    }
}

TEST(TraceGenerator, LoadFractionApproximatelyHonored)
{
    WorkloadSpec s = tinySpec();
    s.loadFraction = 0.25;
    TraceGenerator g(s);
    int loads = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        if (g.next().numLoads > 0)
            ++loads;
    EXPECT_NEAR(loads / double(n), 0.25, 0.02);
}

TEST(TraceGenerator, BranchesArePresentAndBounded)
{
    WorkloadSpec s = tinySpec();
    s.branchFraction = 0.15;
    TraceGenerator g(s);
    int branches = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        if (g.next().isBranch)
            ++branches;
    EXPECT_GT(branches, n / 20);
    EXPECT_LT(branches, n / 3);
}

TEST(TraceGenerator, BranchTargetsMatchSites)
{
    TraceGenerator g(tinySpec());
    for (int i = 0; i < 20000; ++i) {
        const TraceRecord r = g.next();
        if (r.isBranch && r.branchTaken)
            ASSERT_NE(r.branchTarget, 0u);
    }
}

TEST(TraceGenerator, ChasePermutationIsSingleCycle)
{
    // A Sattolo cycle must visit every line exactly once before
    // returning to the start: chase-only workload touches the whole
    // footprint.
    WorkloadSpec s = tinySpec();
    s.hotFraction = 0.0;
    s.streamFraction = 0.0;
    s.strideFraction = 0.0;
    s.randomFraction = 0.0;
    s.chaseFraction = 1.0;
    s.loadFraction = 1.0;
    s.storeFraction = 0.0;
    s.footprintLines = 32;
    TraceGenerator g(s);
    std::set<Addr> lines;
    int loads_seen = 0;
    while (loads_seen < 32) {
        const TraceRecord r = g.next();
        for (unsigned l = 0; l < r.numLoads; ++l) {
            lines.insert(lineNumber(r.loadAddr[l]));
            ++loads_seen;
            if (loads_seen >= 32)
                break;
        }
    }
    // Second loads (8% gather probability) may duplicate, so require
    // near-complete coverage rather than exact.
    EXPECT_GE(lines.size(), 28u);
}

TEST(TraceGenerator, PhasesChangeAccessMix)
{
    WorkloadSpec s = tinySpec();
    s.phases = 2;
    s.phaseLength = 5000;
    s.hotFraction = 0.9;
    TraceGenerator g(s);
    // Count hot-set accesses in phase 0 vs phase 1: phase 1 halves
    // hotFraction, so hot accesses should drop.
    auto hot_share = [&](int n) {
        int hot = 0, total = 0;
        for (int i = 0; i < n; ++i) {
            const TraceRecord r = g.next();
            for (unsigned l = 0; l < r.numLoads; ++l) {
                ++total;
                if (lineNumber(r.loadAddr[l]) - lineNumber(s.dataBase) <
                    s.hotLines)
                    ++hot;
            }
        }
        return total ? hot / double(total) : 0.0;
    };
    const double phase0 = hot_share(5000);
    const double phase1 = hot_share(5000);
    EXPECT_GT(phase0, phase1 + 0.1);
}

TEST(TraceGenerator, CodeFootprintIsBounded)
{
    // Instruction pointers must stay inside the declared code segment
    // so the L1I working set is controlled.
    WorkloadSpec s = tinySpec();
    s.branchSites = 64;
    TraceGenerator g(s);
    const Addr lo = s.codeBase;
    const Addr hi = s.codeBase + 64 * 6 * 4 + 64; // sites*blk*instBytes
    for (int i = 0; i < 20000; ++i) {
        const Addr ip = g.next().ip;
        ASSERT_GE(ip, lo);
        ASSERT_LT(ip, hi);
    }
}

TEST(TraceGenerator, CodeBaseOffsetRelocatesIps)
{
    WorkloadSpec a = tinySpec();
    WorkloadSpec b = tinySpec();
    b.codeBase += 0x1000000;
    TraceGenerator ga(a), gb(b);
    for (int i = 0; i < 1000; ++i) {
        const TraceRecord ra = ga.next();
        const TraceRecord rb = gb.next();
        ASSERT_EQ(ra.ip + 0x1000000, rb.ip);
        ASSERT_EQ(ra.isBranch, rb.isBranch);
    }
}

TEST(TraceGenerator, HighBiasMakesBranchesPredictable)
{
    // branchBias controls the share of coin-flip sites; a bias-1.0
    // spec should produce a taken-rate far from 0.5 overall and with
    // strong per-site structure (loop/biased only).
    WorkloadSpec s = tinySpec();
    s.branchBias = 1.0;
    s.branchFraction = 0.2;
    TraceGenerator g(s);
    int taken = 0, branches = 0;
    for (int i = 0; i < 40000; ++i) {
        const TraceRecord r = g.next();
        if (r.isBranch) {
            ++branches;
            taken += r.branchTaken;
        }
    }
    ASSERT_GT(branches, 1000);
    const double rate = taken / double(branches);
    EXPECT_GT(rate, 0.55); // loops + biased sites skew taken
}

TEST(TraceGenerator, ExecLatencyWithinDeclaredRange)
{
    TraceGenerator g(tinySpec());
    for (int i = 0; i < 10000; ++i) {
        const auto lat = g.next().execLatency;
        ASSERT_GE(lat, 1);
        ASSERT_LE(lat, 16);
    }
}

TEST(VectorTraceSource, ReplaysAndWraps)
{
    std::vector<TraceRecord> recs(3);
    recs[0].ip = 10;
    recs[1].ip = 20;
    recs[2].ip = 30;
    VectorTraceSource src(recs);
    EXPECT_EQ(src.next().ip, 10u);
    EXPECT_EQ(src.next().ip, 20u);
    EXPECT_EQ(src.next().ip, 30u);
    EXPECT_TRUE(src.done());
    EXPECT_EQ(src.next().ip, 10u); // wraps
    src.reset();
    EXPECT_EQ(src.next().ip, 10u);
}

TEST(TraceIo, RoundTrip)
{
    const std::string path = ::testing::TempDir() + "roundtrip.trc";
    TraceGenerator g(tinySpec());
    std::vector<TraceRecord> original;
    for (int i = 0; i < 500; ++i)
        original.push_back(g.next());
    writeTrace(path, original);

    const auto loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].ip, original[i].ip);
        EXPECT_EQ(loaded[i].loadAddr[0], original[i].loadAddr[0]);
        EXPECT_EQ(loaded[i].isBranch, original[i].isBranch);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, GeneratorToFile)
{
    const std::string path = ::testing::TempDir() + "gen.trc";
    TraceGenerator g(tinySpec());
    EXPECT_EQ(writeTrace(path, g, 100), 100u);

    FileTraceSource src(path);
    EXPECT_EQ(src.count(), 100u);
    TraceGenerator ref(tinySpec());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(src.next().ip, ref.next().ip);
    std::remove(path.c_str());
}

TEST(TraceIo, FileSourceWrapsLikeChampSim)
{
    const std::string path = ::testing::TempDir() + "wrap.trc";
    std::vector<TraceRecord> recs(2);
    recs[0].ip = 1;
    recs[1].ip = 2;
    writeTrace(path, recs);
    FileTraceSource src(path);
    EXPECT_EQ(src.next().ip, 1u);
    EXPECT_EQ(src.next().ip, 2u);
    EXPECT_EQ(src.next().ip, 1u); // wrapped
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_ERROR(FileTraceSource("/nonexistent/file.trc"), TraceError,
                 "cannot open");
}

TEST(TraceIo, BadMagicIsFatal)
{
    const std::string path = ::testing::TempDir() + "garbage.trc";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[64] = "this is not a pinte trace file at all";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    EXPECT_ERROR(FileTraceSource src(path), TraceError, "not a pinte trace");
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRejectedAtOpen)
{
    // A zero-record trace has nothing to replay or wrap to; the reader
    // must refuse it at open instead of serving default records.
    const std::string path = ::testing::TempDir() + "empty.trc";
    writeTrace(path, std::vector<TraceRecord>{});
    EXPECT_ERROR(FileTraceSource src(path), TraceError, "empty trace");
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedHeaderIsFatal)
{
    const std::string path = ::testing::TempDir() + "short.trc";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("PN", 1, 2, f);
    std::fclose(f);
    EXPECT_ERROR(FileTraceSource src(path), TraceError, "trace read failed");
    std::remove(path.c_str());
}

namespace
{

/** XOR one bit of a file in place. */
void
flipBit(const std::string &path, long offset, unsigned bit = 0)
{
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f) << path;
    f.seekg(offset);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ (1u << bit));
    f.seekp(offset);
    f.write(&byte, 1);
}

/** Rewrite a current-version trace as version 1: no footer, old tag. */
void
downgradeToV1(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GE(bytes.size(), sizeof(std::uint32_t));
    bytes.resize(bytes.size() - sizeof(std::uint32_t)); // drop footer
    const std::uint32_t v1 = 1;
    bytes.replace(8, sizeof(v1), // version field offset in the header
                  reinterpret_cast<const char *>(&v1), sizeof(v1));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(TraceIo, WriterStampsCurrentVersion)
{
    const std::string path = ::testing::TempDir() + "version.trc";
    writeTrace(path, std::vector<TraceRecord>(3));
    FileTraceSource src(path);
    EXPECT_EQ(src.version(), traceVersion);
    EXPECT_EQ(src.version(), 2u);
    std::remove(path.c_str());
}

TEST(TraceIo, BitFlippedTraceRejectedAtOpen)
{
    const std::string path = ::testing::TempDir() + "bitflip.trc";
    TraceGenerator g(tinySpec());
    writeTrace(path, g, 64);
    { FileTraceSource ok(path); } // pristine file opens fine
    // One flipped bit in the middle of the record payload: silent
    // corruption the CRC32 footer exists to catch.
    flipBit(path, 24 + 30 * 56 + 17, 3);
    EXPECT_ERROR(FileTraceSource src(path), TraceError,
                 "checksum mismatch");
    std::remove(path.c_str());
}

TEST(TraceIo, FlippedFooterAlsoRejected)
{
    const std::string path = ::testing::TempDir() + "footflip.trc";
    writeTrace(path, std::vector<TraceRecord>(5));
    std::error_code ec;
    const long end = static_cast<long>(
        std::filesystem::file_size(path, ec));
    flipBit(path, end - 2, 6);
    EXPECT_ERROR(FileTraceSource src(path), TraceError,
                 "checksum mismatch");
    std::remove(path.c_str());
}

TEST(TraceIo, Version1WithoutFooterStillReadable)
{
    const std::string path = ::testing::TempDir() + "old_v1.trc";
    TraceGenerator g(tinySpec());
    std::vector<TraceRecord> original;
    for (int i = 0; i < 50; ++i)
        original.push_back(g.next());
    writeTrace(path, original);
    downgradeToV1(path);

    FileTraceSource src(path);
    EXPECT_EQ(src.version(), 1u);
    ASSERT_EQ(src.count(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        const TraceRecord r = src.next();
        EXPECT_EQ(r.ip, original[i].ip);
        EXPECT_EQ(r.isBranch, original[i].isBranch);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, RecordValidationRejectsOutOfRangeFields)
{
    TraceRecord r; // defaults are valid
    validateRecord(r, 0, "unit");

    TraceRecord loads = r;
    loads.numLoads = 7;
    EXPECT_ERROR(validateRecord(loads, 1, "unit"), TraceError,
                 "numLoads 7 exceeds 2");
    TraceRecord stores = r;
    stores.numStores = 3;
    EXPECT_ERROR(validateRecord(stores, 2, "unit"), TraceError,
                 "numStores 3 exceeds 2");
    TraceRecord branch = r;
    branch.isBranch = 2;
    EXPECT_ERROR(validateRecord(branch, 3, "unit"), TraceError,
                 "isBranch byte is 2");
    TraceRecord taken = r;
    taken.branchTaken = 1;
    EXPECT_ERROR(validateRecord(taken, 4, "unit"), TraceError,
                 "branchTaken set on a non-branch");
    TraceRecord reg = r;
    reg.srcReg[1] = 64; // numArchRegs, but not the 0xff sentinel
    EXPECT_ERROR(validateRecord(reg, 5, "unit"), TraceError,
                 "register id 64 out of range");
    TraceRecord lat = r;
    lat.execLatency = 0;
    EXPECT_ERROR(validateRecord(lat, 6, "unit"), TraceError,
                 "zero execution latency");
}

TEST(TraceIo, CorruptRecordInV1RejectedOnRead)
{
    // A version-1 file has no checksum, so a poisoned field is only
    // caught by per-record validation at read time. The reader decodes
    // in batches, so the error surfaces on the next() that pulls in
    // the batch holding the bad record (here: the very first call) —
    // but it still names the offending record's own index.
    const std::string path = ::testing::TempDir() + "badrec_v1.trc";
    writeTrace(path, std::vector<TraceRecord>(4));
    downgradeToV1(path);
    flipBit(path, 24 + 2 * 56 + 51, 2); // record 2's numLoads -> 4
    FileTraceSource src(path);
    EXPECT_ERROR((void)src.next(), TraceError, "bad trace record 2");
    std::remove(path.c_str());
}

TEST(TraceIo, CorpusReplayNeverCrashesTheReader)
{
    // Every committed corpus input — including regression cases for
    // reader bugs — must produce either a clean parse or a typed
    // TraceError; anything else (crash, unhandled exception) fails.
    const std::string dir = std::string(PINTE_TEST_DATA_DIR) + "/corpus";
    std::size_t total = 0, clean = 0, rejected = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".trc")
            continue;
        ++total;
        try {
            FileTraceSource src(entry.path().string());
            for (std::uint64_t i = 0; i < src.count(); ++i)
                (void)src.next();
            ++clean;
            EXPECT_EQ(entry.path().filename().string().rfind("seed_", 0),
                      0u)
                << entry.path() << " parsed cleanly but is not a seed";
        } catch (const TraceError &) {
            ++rejected;
        }
    }
    EXPECT_GE(total, 10u) << "corpus went missing from " << dir;
    EXPECT_EQ(clean, 2u); // seed_minimal.trc and seed_v1.trc
    EXPECT_EQ(rejected, total - clean);
}

TEST(Zoo, SuiteSizesMatchTableTwo)
{
    EXPECT_EQ(spec2006Zoo().size(), 29u);
    EXPECT_EQ(spec2017Zoo().size(), 20u);
    EXPECT_EQ(fullZoo().size(), 49u);
}

TEST(Zoo, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &s : fullZoo())
        names.insert(s.name);
    EXPECT_EQ(names.size(), 49u);
}

TEST(Zoo, AllEntriesGenerateCleanly)
{
    for (const auto &spec : fullZoo()) {
        TraceGenerator g(spec);
        for (int i = 0; i < 200; ++i)
            (void)g.next();
        EXPECT_EQ(g.generated(), 200u) << spec.name;
    }
}

TEST(Zoo, ClassesAssignedAsDocumented)
{
    EXPECT_EQ(findWorkload("429.mcf").klass, WorkloadClass::DramBound);
    EXPECT_EQ(findWorkload("465.tonto").klass, WorkloadClass::CoreBound);
    EXPECT_EQ(findWorkload("450.soplex").klass, WorkloadClass::LlcBound);
    EXPECT_EQ(findWorkload("470.lbm").klass, WorkloadClass::Streaming);
    EXPECT_EQ(findWorkload("403.gcc").klass, WorkloadClass::Mixed);
    EXPECT_EQ(findWorkload("602.gcc").klass, WorkloadClass::DramBound);
}

TEST(Zoo, SuitesTaggedCorrectly)
{
    for (const auto &s : spec2006Zoo())
        EXPECT_EQ(s.suite, Suite::Spec2006) << s.name;
    for (const auto &s : spec2017Zoo())
        EXPECT_EQ(s.suite, Suite::Spec2017) << s.name;
}

TEST(Zoo, SmallZooIsSubsetOfFullZoo)
{
    const auto small = smallZoo();
    EXPECT_GE(small.size(), 10u);
    for (const auto &s : small)
        EXPECT_NO_FATAL_FAILURE(findWorkload(s.name));
}

TEST(Zoo, SmallZooSpansClasses)
{
    std::set<WorkloadClass> classes;
    for (const auto &s : smallZoo())
        classes.insert(s.klass);
    EXPECT_GE(classes.size(), 5u);
}

TEST(Zoo, UnknownNameIsFatal)
{
    EXPECT_ERROR(findWorkload("999.nonesuch"), ConfigError,
                 "unknown zoo workload");
}

TEST(WorkloadSpec, NormalizeMixSumsToOne)
{
    WorkloadSpec s;
    s.streamFraction = 2.0;
    s.strideFraction = 1.0;
    s.chaseFraction = 1.0;
    s.randomFraction = 0.0;
    s.normalizeMix();
    EXPECT_NEAR(s.streamFraction + s.strideFraction + s.chaseFraction +
                    s.randomFraction,
                1.0, 1e-12);
    EXPECT_NEAR(s.streamFraction, 0.5, 1e-12);
}

TEST(WorkloadSpec, NormalizeMixDegenerateFallsBackToStream)
{
    WorkloadSpec s;
    s.streamFraction = s.strideFraction = 0.0;
    s.chaseFraction = s.randomFraction = 0.0;
    s.normalizeMix();
    EXPECT_EQ(s.streamFraction, 1.0);
}

TEST(WorkloadClassNames, AllDistinct)
{
    std::set<std::string> names;
    names.insert(toString(WorkloadClass::CoreBound));
    names.insert(toString(WorkloadClass::CacheFriendly));
    names.insert(toString(WorkloadClass::LlcBound));
    names.insert(toString(WorkloadClass::DramBound));
    names.insert(toString(WorkloadClass::Streaming));
    names.insert(toString(WorkloadClass::Mixed));
    EXPECT_EQ(names.size(), 6u);
}
