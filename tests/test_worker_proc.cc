/**
 * @file
 * Process-isolation tests: the CRC32-framed pipe protocol, and the
 * fork-isolated campaign backend's crash containment, hard timeout
 * escalation, retry/backoff, and rerun determinism.
 *
 * Worker-level faults are armed programmatically with armFault();
 * each campaign test arms its own plan and disarms afterwards, and
 * the forked workers inherit the armed plan across fork() — which is
 * exactly how the pintesim chaos test delivers PINTE_INJECT_FAULT to
 * its workers.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/fault.hh"
#include "common/json.hh"
#include "sim/experiment.hh"
#include "sim/sink.hh"
#include "sim/watchdog.hh"
#include "sim/wire.hh"
#include "sim/worker_proc.hh"
#include "trace/zoo.hh"

namespace pinte
{
namespace
{

/** Pipe pair that closes whatever is still open at scope exit. */
struct Pipe
{
    int rd = -1, wr = -1;
    Pipe()
    {
        int fds[2];
        EXPECT_EQ(::pipe(fds), 0);
        rd = fds[0];
        wr = fds[1];
    }
    ~Pipe()
    {
        closeRd();
        closeWr();
    }
    void closeRd()
    {
        if (rd >= 0)
            ::close(rd);
        rd = -1;
    }
    void closeWr()
    {
        if (wr >= 0)
            ::close(wr);
        wr = -1;
    }
};

TEST(Wire, FrameRoundTrip)
{
    Pipe p;
    const std::string payload = "{\"hello\":\"world\"}";
    ASSERT_TRUE(writeFrame(p.wr, FrameType::Result, payload));
    Frame f;
    EXPECT_EQ(readFrame(p.rd, f), WireStatus::Ok);
    EXPECT_EQ(f.type, FrameType::Result);
    EXPECT_EQ(f.payload, payload);
}

TEST(Wire, EmptyPayloadRoundTrip)
{
    Pipe p;
    ASSERT_TRUE(writeFrame(p.wr, FrameType::Shutdown, std::string()));
    Frame f;
    EXPECT_EQ(readFrame(p.rd, f), WireStatus::Ok);
    EXPECT_EQ(f.type, FrameType::Shutdown);
    EXPECT_TRUE(f.payload.empty());
}

TEST(Wire, JobPayloadRoundTrip)
{
    std::uint64_t index = 0;
    std::uint32_t attempt = 0;
    EXPECT_TRUE(unpackJob(packJob(11, 2), index, attempt));
    EXPECT_EQ(index, 11u);
    EXPECT_EQ(attempt, 2u);
    EXPECT_FALSE(unpackJob("short", index, attempt));
    EXPECT_FALSE(unpackJob(packJob(0, 0) + "x", index, attempt));
}

TEST(Wire, HeartbeatPayloadRoundTrip)
{
    std::uint64_t instructions = 0;
    EXPECT_TRUE(
        unpackHeartbeat(packHeartbeat(123456789ull), instructions));
    EXPECT_EQ(instructions, 123456789ull);
    EXPECT_FALSE(unpackHeartbeat("", instructions));
}

TEST(Wire, CleanEofAtFrameBoundary)
{
    Pipe p;
    ASSERT_TRUE(writeFrame(p.wr, FrameType::Heartbeat,
                           packHeartbeat(1)));
    p.closeWr();
    Frame f;
    EXPECT_EQ(readFrame(p.rd, f), WireStatus::Ok);
    EXPECT_EQ(readFrame(p.rd, f), WireStatus::Eof);
}

TEST(Wire, TornFrameIsErrorNotEof)
{
    // Capture a valid frame's bytes, then replay only a prefix — the
    // signature of a worker killed mid-write.
    Pipe capture;
    ASSERT_TRUE(
        writeFrame(capture.wr, FrameType::Result, "0123456789"));
    char buf[64];
    const ssize_t len = ::read(capture.rd, buf, sizeof(buf));
    ASSERT_GT(len, 12);

    Pipe torn;
    ASSERT_EQ(::write(torn.wr, buf, static_cast<size_t>(len - 5)),
              len - 5);
    torn.closeWr();
    Frame f;
    EXPECT_EQ(readFrame(torn.rd, f), WireStatus::Error);
}

TEST(Wire, CorruptCrcIsGarbage)
{
    Pipe p;
    ASSERT_TRUE(writeFrame(p.wr, FrameType::Result, "payload",
                           /*corrupt_crc=*/true));
    Frame f;
    EXPECT_EQ(readFrame(p.rd, f), WireStatus::Garbage);
}

TEST(Wire, BadMagicIsGarbage)
{
    Pipe p;
    const char junk[16] = "not-a-frame-at-";
    ASSERT_EQ(::write(p.wr, junk, sizeof(junk)),
              static_cast<ssize_t>(sizeof(junk)));
    p.closeWr();
    Frame f;
    EXPECT_EQ(readFrame(p.rd, f), WireStatus::Garbage);
}

TEST(Wire, OversizedLengthIsGarbage)
{
    // Valid magic, then a length beyond the cap: must classify as
    // Garbage before any attempt to allocate or read the payload.
    Pipe p;
    unsigned char head[9];
    head[0] = 'P';
    head[1] = 'N';
    head[2] = 'T';
    head[3] = 'W';
    head[4] = 1; // FrameType::Job
    const std::uint32_t len = kMaxFramePayload + 1;
    head[5] = static_cast<unsigned char>(len);
    head[6] = static_cast<unsigned char>(len >> 8);
    head[7] = static_cast<unsigned char>(len >> 16);
    head[8] = static_cast<unsigned char>(len >> 24);
    ASSERT_EQ(::write(p.wr, head, sizeof(head)),
              static_cast<ssize_t>(sizeof(head)));
    Frame f;
    EXPECT_EQ(readFrame(p.rd, f), WireStatus::Garbage);
}

TEST(Wire, ReassemblyExtractsFramesAcrossArbitraryChunks)
{
    // Feed one byte at a time: NeedMore until the last byte lands,
    // then the complete CRC-verified frame — the append-only spool
    // stream arrives in whatever chunks the page cache serves.
    const std::string bytes =
        encodeFrame(FrameType::Record, "{\"cell\": 7}");
    FrameReassembly r;
    Frame f;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        r.feed(bytes.data() + i, 1);
        EXPECT_EQ(r.next(f), ReassemblyStatus::NeedMore);
    }
    r.feed(bytes.data() + bytes.size() - 1, 1);
    ASSERT_EQ(r.next(f), ReassemblyStatus::Frame);
    EXPECT_EQ(f.type, FrameType::Record);
    EXPECT_EQ(f.payload, "{\"cell\": 7}");
    EXPECT_EQ(r.next(f), ReassemblyStatus::NeedMore);
    EXPECT_EQ(r.pending(), 0u);

    // Two frames in one chunk extract back to back.
    const std::string two = encodeFrame(FrameType::Record, "a") +
                            encodeFrame(FrameType::Record, "b");
    r.feed(two.data(), two.size());
    ASSERT_EQ(r.next(f), ReassemblyStatus::Frame);
    EXPECT_EQ(f.payload, "a");
    ASSERT_EQ(r.next(f), ReassemblyStatus::Frame);
    EXPECT_EQ(f.payload, "b");
    EXPECT_EQ(r.next(f), ReassemblyStatus::NeedMore);
}

TEST(Wire, ReassemblyKeepsTornTailBuffered)
{
    // A complete frame plus half of the next — a worker killed
    // mid-append. The full frame extracts; the tail stays pending
    // (NeedMore, never Garbage): liveness is the lease's call, not
    // the stream's.
    const std::string whole = encodeFrame(FrameType::Record, "whole");
    const std::string torn = encodeFrame(FrameType::Record, "torn");
    FrameReassembly r;
    r.feed(whole.data(), whole.size());
    r.feed(torn.data(), torn.size() / 2);
    Frame f;
    ASSERT_EQ(r.next(f), ReassemblyStatus::Frame);
    EXPECT_EQ(f.payload, "whole");
    EXPECT_EQ(r.next(f), ReassemblyStatus::NeedMore);
    EXPECT_EQ(r.pending(), torn.size() / 2);
}

TEST(Wire, ReassemblyGarbageIsSticky)
{
    const std::string bad =
        encodeFrame(FrameType::Record, "x", /*corrupt_crc=*/true);
    const std::string good = encodeFrame(FrameType::Record, "y");
    FrameReassembly r;
    r.feed(bad.data(), bad.size());
    Frame f;
    EXPECT_EQ(r.next(f), ReassemblyStatus::Garbage);
    // Resynchronizing past a CRC failure could silently skip records;
    // the stream stays condemned even when clean frames follow.
    r.feed(good.data(), good.size());
    EXPECT_EQ(r.next(f), ReassemblyStatus::Garbage);
}

TEST(WorkerProc, RetryBackoffIsDeterministicWindowedDecorrelated)
{
    const double base = 0.05;
    for (std::uint32_t a = 0; a < 5; ++a) {
        const double lo = base * static_cast<double>(1u << a);
        const double d = retryBackoffSeconds(base, a, 42);
        // Same (base, attempt, key) -> the same delay, forever.
        EXPECT_EQ(d, retryBackoffSeconds(base, a, 42));
        // Inside the doubling window [base*2^a, base*2^(a+1)).
        EXPECT_GE(d, lo);
        EXPECT_LT(d, 2.0 * lo);
    }
    // Distinct keys land at distinct points of the window: retries of
    // cells lost to one event do not re-collide.
    const double d1 = retryBackoffSeconds(base, 1, 1);
    const double d2 = retryBackoffSeconds(base, 1, 2);
    const double d3 = retryBackoffSeconds(base, 1, 3);
    EXPECT_FALSE(d1 == d2 && d2 == d3);
}

/** Disarm the fault plan however a test exits. */
struct FaultScope
{
    explicit FaultScope(const char *spec) { armFault(spec); }
    ~FaultScope() { armFault(""); }
};

/** A fast synthetic job: no simulation, but a fully serializable
 *  result whose identity encodes the cell index. */
RunResult
syntheticResult(std::size_t i)
{
    RunResult r;
    r.workload = "synthetic.cell";
    r.contention = "cell@" + std::to_string(i);
    r.metrics.ipc = 1.0 + static_cast<double>(i);
    r.metrics.llcAccesses = 100 + i;
    r.metrics.llcMisses = i;
    r.cpuSeconds = 0.25;
    return r;
}

ProcLabelFn
syntheticLabel()
{
    return [](std::size_t i, RunResult &r) {
        r.workload = "synthetic.cell";
        r.contention = "cell@" + std::to_string(i);
    };
}

TEST(WorkerProc, ZeroCellsIsEmpty)
{
    ProcOptions opt;
    const auto results = runProcessCampaign(
        0, [](std::size_t) { return RunResult(); }, opt);
    EXPECT_TRUE(results.empty());
}

TEST(WorkerProc, ResultsArriveInSubmissionOrder)
{
    ProcOptions opt;
    opt.workers = 3;
    std::vector<int> merged(8, 0);
    const auto results = runProcessCampaign(
        8, [](std::size_t i) { return syntheticResult(i); }, opt,
        syntheticLabel(),
        [&](std::size_t i, const RunResult &r) {
            merged[i]++;
            EXPECT_FALSE(r.failed());
        });
    ASSERT_EQ(results.size(), 8u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_FALSE(results[i].failed());
        EXPECT_EQ(results[i].contention, "cell@" + std::to_string(i));
        EXPECT_EQ(results[i].metrics.ipc,
                  1.0 + static_cast<double>(i));
        EXPECT_EQ(merged[i], 1) << "merge-on-arrival fired per cell";
    }
}

TEST(WorkerProc, InChildCleanFailureIsFinalNotRetried)
{
    // A result that *parses* but carries a RunError is a
    // deterministic simulation failure: quarantined immediately, no
    // retry attempts consumed — identical to thread-mode semantics.
    ProcOptions opt;
    opt.workers = 2;
    opt.maxRetries = 3;
    const auto results = runProcessCampaign(
        4,
        [](std::size_t i) {
            if (i != 2)
                return syntheticResult(i);
            RunResult r;
            r.workload = "synthetic.cell";
            r.contention = "cell@2";
            r.error.kind = "trace";
            r.error.component = "trace_io";
            r.error.message = "truncated trace";
            return r;
        },
        opt, syntheticLabel());
    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(results[2].failed());
    EXPECT_EQ(results[2].error.kind, "trace");
    EXPECT_EQ(results[2].error.attempts, 0u)
        << "clean failures must not consume retry attempts";
    EXPECT_TRUE(results[2].error.attemptLog.empty());
    for (const std::size_t i : {0u, 1u, 3u})
        EXPECT_FALSE(results[i].failed());
}

TEST(WorkerProc, CrashIsQuarantinedWithSignalAndAttemptLog)
{
    FaultScope fault("worker-crash:2"); // cell index 1, every attempt
    ProcOptions opt;
    opt.workers = 2;
    opt.maxRetries = 2;
    opt.backoffBase = 0.01;
    const auto results = runProcessCampaign(
        4, [](std::size_t i) { return syntheticResult(i); }, opt,
        syntheticLabel());
    ASSERT_EQ(results.size(), 4u);

    const RunResult &lost = results[1];
    ASSERT_TRUE(lost.failed());
    EXPECT_EQ(lost.error.kind, "worker");
    EXPECT_EQ(lost.error.component, "worker_proc");
    EXPECT_EQ(lost.error.signal, SIGABRT);
    EXPECT_EQ(lost.error.attempts, 2u);
    ASSERT_EQ(lost.error.attemptLog.size(), 2u);
    EXPECT_NE(lost.error.attemptLog[0].find("attempt 1"),
              std::string::npos);
    EXPECT_NE(lost.error.attemptLog[1].find("attempt 2"),
              std::string::npos);
    // The quarantined cell still carries its campaign identity.
    EXPECT_EQ(lost.contention, "cell@1");

    // The crash was contained: every other cell completed.
    for (const std::size_t i : {0u, 2u, 3u})
        EXPECT_FALSE(results[i].failed()) << "cell " << i;
}

TEST(WorkerProc, GarbageFrameIsDiscardedNotTrusted)
{
    FaultScope fault("worker-garbage:1");
    ProcOptions opt;
    opt.workers = 2;
    opt.maxRetries = 1;
    const auto results = runProcessCampaign(
        3, [](std::size_t i) { return syntheticResult(i); }, opt,
        syntheticLabel());
    ASSERT_EQ(results.size(), 3u);
    ASSERT_TRUE(results[0].failed());
    EXPECT_EQ(results[0].error.kind, "worker");
    ASSERT_EQ(results[0].error.attemptLog.size(), 1u);
    EXPECT_NE(results[0].error.attemptLog[0].find(
                  "corrupt result frame"),
              std::string::npos);
    EXPECT_FALSE(results[1].failed());
    EXPECT_FALSE(results[2].failed());
}

TEST(WorkerProc, TimeoutEscalationStartsWithSigterm)
{
    // A worker that blocks without heartbeats past the deadline gets
    // SIGTERM first; a cooperative (default-disposition) worker dies
    // of it and the cell reports kind "timeout" + that signal.
    ProcOptions opt;
    opt.workers = 1;
    opt.jobTimeout = 0.4;
    opt.killGrace = 5.0; // escalation must not be needed here
    const auto results = runProcessCampaign(
        1,
        [](std::size_t) {
            std::this_thread::sleep_for(std::chrono::seconds(30));
            return RunResult();
        },
        opt, syntheticLabel());
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].failed());
    EXPECT_EQ(results[0].error.kind, "timeout");
    EXPECT_EQ(results[0].error.signal, SIGTERM);
    EXPECT_EQ(results[0].error.attempts, 1u);
    EXPECT_NE(results[0].error.message.find("--job-timeout"),
              std::string::npos);
}

TEST(WorkerProc, NonCooperativeHangNeedsSigkill)
{
    // The worker-hang fault ignores SIGTERM and blocks in pause():
    // the exact shape the cooperative watchdog can never catch (see
    // watchdog.hh's blind-spot note). Only the parent's escalation to
    // SIGKILL ends it.
    FaultScope fault("worker-hang:1");
    ProcOptions opt;
    opt.workers = 1;
    opt.jobTimeout = 0.4;
    opt.killGrace = 0.3;
    const auto results = runProcessCampaign(
        1, [](std::size_t i) { return syntheticResult(i); }, opt,
        syntheticLabel());
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].failed());
    EXPECT_EQ(results[0].error.kind, "timeout");
    EXPECT_EQ(results[0].error.signal, SIGKILL);
    EXPECT_EQ(results[0].error.attempts, 1u);
}

TEST(WorkerProc, TornFrameThenWedgeIsKilledByDeadlineNotDeadlock)
{
    // The worker-torn-frame fault writes half a Result frame and then
    // wedges with SIGTERM ignored. A parent that read frames
    // blockingly would deadlock right here, forever (the pre-fix
    // DESIGN.md §4i limitation); the non-blocking reassembly buffer
    // keeps the torn bytes pending while the hard deadline escalates
    // to SIGKILL, and the half-frame never surfaces as a result.
    FaultScope fault("worker-torn-frame:1");
    ProcOptions opt;
    opt.workers = 1;
    opt.jobTimeout = 0.4;
    opt.killGrace = 0.3;
    const auto results = runProcessCampaign(
        1, [](std::size_t i) { return syntheticResult(i); }, opt,
        syntheticLabel());
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].failed());
    EXPECT_EQ(results[0].error.kind, "timeout");
    EXPECT_EQ(results[0].error.signal, SIGKILL);
    EXPECT_EQ(results[0].error.attempts, 1u);
}

TEST(WorkerProc, HeartbeatsKeepSlowJobsAlive)
{
    // A job slower than --job-timeout but making steady instruction
    // progress must never be killed: heartbeats forwarded over the
    // pipe keep extending the parent's deadline.
    ProcOptions opt;
    opt.workers = 1;
    opt.jobTimeout = 0.5;
    const auto results = runProcessCampaign(
        1,
        [](std::size_t i) {
            for (std::uint64_t tick = 1; tick <= 30; ++tick) {
                JobWatchdog::heartbeat(tick * 1000);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
            return syntheticResult(i);
        },
        opt, syntheticLabel());
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].failed())
        << results[0].error.message;
}

/** Serialize a result with cpuSeconds zeroed: bitwise comparison of
 *  everything a simulation deterministically produces. */
std::string
canonical(RunResult r)
{
    r.cpuSeconds = 0.0;
    std::ostringstream os;
    JsonWriter w(os, 0);
    writeRunJson(w, r);
    return os.str();
}

TEST(WorkerProc, RetriedCellIsBitwiseIdenticalToFreshRun)
{
    // Real simulations: a worker-flaky cell dies on its first attempt
    // and succeeds on retry; the recovered result must be
    // bitwise-identical (modulo cpu_seconds) to a fault-free run.
    const WorkloadSpec w = findWorkload("450.soplex");
    const std::vector<double> points = {0.0, 0.1, 0.2};
    auto job = [&](std::size_t i) {
        ExperimentParams params;
        params.warmup = 2000;
        params.roi = 4000;
        params.sampleEvery = 2000;
        ExperimentSpec spec((MachineConfig::scaled()));
        spec.workload(w).params(params);
        if (points[i] > 0.0)
            spec.pinte(points[i]);
        return spec.tryRun().result;
    };

    ProcOptions opt;
    opt.workers = 2;
    opt.maxRetries = 2;
    opt.backoffBase = 0.01;

    const auto fresh = runProcessCampaign(points.size(), job, opt);
    std::vector<RunResult> retried;
    {
        FaultScope fault("worker-flaky:2"); // cell 1, first attempt
        retried = runProcessCampaign(points.size(), job, opt);
    }

    ASSERT_EQ(fresh.size(), retried.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_FALSE(fresh[i].failed());
        EXPECT_FALSE(retried[i].failed());
        EXPECT_EQ(canonical(fresh[i]), canonical(retried[i]))
            << "cell " << i
            << " diverged across a retry — rerun determinism broken";
    }
}

} // namespace
} // namespace pinte
