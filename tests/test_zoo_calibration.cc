/**
 * @file
 * Zoo calibration: every SPEC-like workload must exhibit the
 * behavioral signature its class declares (DESIGN.md section 2).
 *
 * Table II's error taxonomy and Fig 8's sensitivity classes only
 * reproduce if core-bound means "AMAT pinned at the private caches",
 * DRAM-bound means "AMAT near DRAM latency regardless of the LLC",
 * and so on. These are parameterized isolation runs over the full
 * 49-entry zoo with deliberately generous bounds — they catch class
 * regressions when zoo parameters are retuned, not small drifts.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/experiment.hh"

using namespace pinte;

namespace
{

ExperimentParams
quick()
{
    ExperimentParams p;
    p.warmup = 10000;
    p.roi = 20000;
    p.sampleEvery = 5000;
    return p;
}

std::vector<std::string>
zooNames()
{
    std::vector<std::string> names;
    for (const auto &s : fullZoo())
        names.push_back(s.name);
    return names;
}

RunResult
isolation(const WorkloadSpec &spec, const MachineConfig &machine,
          const ExperimentParams &p)
{
    return ExperimentSpec(machine).workload(spec).params(p).run();
}

} // namespace

class ZooCalibration : public ::testing::TestWithParam<std::string>
{
  protected:
    static const RunResult &
    isolationRun(const std::string &name)
    {
        // One isolation run per workload, shared across the suite.
        static std::map<std::string, RunResult> cache;
        auto it = cache.find(name);
        if (it == cache.end()) {
            it = cache
                     .emplace(name,
                              isolation(findWorkload(name),
                                           MachineConfig::scaled(),
                                           quick()))
                     .first;
        }
        return it->second;
    }
};

TEST_P(ZooCalibration, IpcInPlausibleRange)
{
    const RunResult &r = isolationRun(GetParam());
    EXPECT_GT(r.metrics.ipc, 0.02);
    EXPECT_LT(r.metrics.ipc, 4.0);
}

TEST_P(ZooCalibration, AmatBoundedBelowByL1Latency)
{
    const RunResult &r = isolationRun(GetParam());
    EXPECT_GE(r.metrics.amat, 4.0);
}

TEST_P(ZooCalibration, ClassSignatureHolds)
{
    const WorkloadSpec spec = findWorkload(GetParam());
    const RunResult &r = isolationRun(GetParam());

    switch (spec.klass) {
      case WorkloadClass::CoreBound:
        // Time lives in the private caches: AMAT around L1/L2, the
        // core retiring briskly.
        EXPECT_LT(r.metrics.amat, 20.0) << "core-bound AMAT";
        EXPECT_GT(r.metrics.ipc, 0.5) << "core-bound IPC";
        break;
      case WorkloadClass::CacheFriendly:
        // Fits the LLC: whatever misses exist are cold/warmup tails.
        EXPECT_LT(r.metrics.missRate, 0.35) << "friendly LLC MR";
        EXPECT_LT(r.metrics.amat, 60.0) << "friendly AMAT";
        break;
      case WorkloadClass::LlcBound:
        // Working set near LLC capacity: LLC heavily used...
        EXPECT_GT(r.metrics.llcOccupancyFraction, 0.25)
            << "LLC-bound occupancy";
        // ...but not already DRAM-bound in isolation.
        EXPECT_GT(r.metrics.amat, 10.0);
        EXPECT_LT(r.metrics.amat, 120.0) << "LLC-bound AMAT";
        break;
      case WorkloadClass::DramBound:
        EXPECT_GT(r.metrics.amat, 60.0) << "DRAM-bound AMAT";
        EXPECT_GT(r.metrics.missRate, 0.5) << "DRAM-bound LLC MR";
        EXPECT_LT(r.metrics.ipc, 0.4) << "DRAM-bound IPC";
        break;
      case WorkloadClass::Streaming:
        // Sequential scans much larger than the LLC.
        EXPECT_GT(r.metrics.missRate, 0.25) << "streaming LLC MR";
        EXPECT_GT(r.metrics.amat, 15.0) << "streaming AMAT";
        break;
      case WorkloadClass::Mixed:
        // Phase blends: just demand sanity plus real LLC usage.
        EXPECT_GT(r.metrics.llcAccesses, 100u) << "mixed LLC traffic";
        break;
    }
}

TEST_P(ZooCalibration, CoreBoundBarelyMissesInLlc)
{
    const WorkloadSpec spec = findWorkload(GetParam());
    if (spec.klass != WorkloadClass::CoreBound ||
        spec.name == "648.exchange2") {
        GTEST_SKIP() << "only meaningful for LLC-touching core-bound";
    }
    const RunResult &r = isolationRun(GetParam());
    // The class signature behind Table II's '*' rows: the LLC sees
    // traffic (so reuse histograms exist) but misses are rare per
    // kilo-instruction.
    EXPECT_LT(r.metrics.llcMpki, 60.0);
}

TEST_P(ZooCalibration, DeterministicAcrossRuns)
{
    const WorkloadSpec spec = findWorkload(GetParam());
    const RunResult a =
        isolation(spec, MachineConfig::scaled(), quick());
    const RunResult &b = isolationRun(GetParam());
    EXPECT_EQ(a.metrics.ipc, b.metrics.ipc) << "nondeterminism";
    EXPECT_EQ(a.metrics.llcMisses, b.metrics.llcMisses);
}

INSTANTIATE_TEST_SUITE_P(
    FullZoo, ZooCalibration, ::testing::ValuesIn(zooNames()),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '.' || c == '-')
                c = '_';
        return n;
    });
