#!/usr/bin/env python3
"""Chaos acceptance for the spool campaign backend (ctest
chaos.spool_broker, via check_spool.cmake).

Five campaigns run against fault-free references, exercising every
leg of the broker's failure model (src/sim/broker.hh):

 1. clean:  a fault-free spool campaign must be bitwise-identical
    (modulo cpu_seconds) to the same sweep under --isolation=process.
 2. flaky:  a worker that abort()s on its first attempt at one cell
    must be retried under --max-retries and the campaign must still
    end bitwise-identical to the fault-free reference — transient
    loss leaves no trace in the data.
 3. crash:  a worker that abort()s on every attempt must exhaust the
    retry budget through the broker's fast dead-child reclamation,
    quarantine the cell with shard id, fencing token and the full
    attempt ladder in a schema-valid v6 report, and exit nonzero.
 4. hang:   a worker that wedges (SIGTERM ignored, no heartbeats)
    must lose its lease after --lease-ttl, be SIGKILLed by the
    broker, and quarantine the same way ("lease expired" ladder).
 5. torn:   a worker that appends half a record frame and then
    wedges must quarantine without the torn tail ever reaching the
    report — the stream scanner keeps incomplete frames buffered.
 6. kill:   the broker and its whole worker group are SIGKILLed
    mid-campaign (a power cut); a second broker started with the
    same flags must finish from the spool alone, exit zero, and
    produce a report bitwise-identical to a fault-free run.

In every faulty campaign the healthy cells must match the reference
bit for bit: containment, not just survival.

Standard library only. Exit 0 on full success, 1 with a diagnostic
on the first violated expectation.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time

CELLS = 12  # the standard p-induce sweep grid


def fail(msg):
    sys.stderr.write("chaos_spool: FAIL: %s\n" % msg)
    sys.exit(1)


def strip(node):
    """Drop cpu_seconds everywhere: the only nondeterministic field."""
    if isinstance(node, dict):
        return {k: strip(v) for k, v in node.items()
                if k != "cpu_seconds"}
    if isinstance(node, list):
        return [strip(v) for v in node]
    return node


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


class Harness:
    def __init__(self, pintesim, checker, workdir):
        self.pintesim = pintesim
        self.checker = checker
        self.workdir = workdir

    def path(self, name):
        return os.path.join(self.workdir, name)

    def common(self, warmup, roi, sample):
        return [self.pintesim, "--workload", "450.soplex", "--sweep",
                "--warmup", str(warmup), "--roi", str(roi),
                "--sample", str(sample), "--jobs", "2",
                "--format", "json"]

    def spool_args(self, tag, extra):
        spool = self.path("spool_" + tag)
        shutil.rmtree(spool, ignore_errors=True)
        out = self.path("spool_%s.json" % tag)
        if os.path.exists(out):
            os.remove(out)
        return ["--isolation=spool", "--spool", spool,
                "--out", out] + extra, spool, out

    def run(self, args, fault=None, expect_exit=0, timeout=240):
        env = dict(os.environ)
        env.pop("PINTE_INJECT_FAULT", None)
        if fault:
            env["PINTE_INJECT_FAULT"] = fault
        p = subprocess.run(args, env=env, capture_output=True,
                           text=True, timeout=timeout)
        if expect_exit == 0 and p.returncode != 0:
            fail("%s exited %d:\n%s" % (" ".join(args), p.returncode,
                                        p.stderr))
        if expect_exit != 0:
            if p.returncode == 0:
                fail("%s exited 0; a lost shard must surface in the "
                     "exit status" % " ".join(args))
            if "sweep jobs failed" not in p.stderr:
                fail("faulty campaign did not report its failure "
                     "count on stderr:\n%s" % p.stderr)
        return p

    def check_schema(self, out):
        p = subprocess.run([sys.executable, self.checker, out],
                           capture_output=True, text=True)
        if p.returncode != 0:
            fail("%s failed schema validation:\n%s%s"
                 % (out, p.stdout, p.stderr))

    def expect_bitwise(self, out, reference, what):
        got, want = strip(load(out)), strip(load(reference))
        if got != want:
            fail("%s: report differs from %s (beyond cpu_seconds)"
                 % (what, os.path.basename(reference)))

    def expect_quarantine(self, out, reference, what,
                          attempts, ladder_word):
        """One quarantined cell with full spool provenance; every
        healthy cell bitwise-equal to the reference."""
        self.check_schema(out)
        doc = load(out)
        failed = [r for r in doc["runs"] if r["status"] == "failed"]
        ok = [r for r in doc["runs"] if r["status"] == "ok"]
        if len(failed) != 1:
            fail("%s: expected exactly 1 quarantined cell, got %d"
                 % (what, len(failed)))
        e = failed[0]["error"]
        if e["kind"] != "worker" or e["component"] != "broker":
            fail("%s: quarantine carries kind=%r component=%r"
                 % (what, e["kind"], e["component"]))
        if not e.get("shard"):
            fail("%s: quarantine lacks its shard id" % what)
        # One token bump per reclamation on top of the initial claim.
        if e.get("fencing_token", 0) != attempts + 1:
            fail("%s: fencing_token %r after %d attempt(s)"
                 % (what, e.get("fencing_token"), attempts))
        if e["attempts"] != attempts:
            fail("%s: %d attempt(s) consumed, expected %d"
                 % (what, e["attempts"], attempts))
        if len(e["attempt_log"]) != attempts:
            fail("%s: attempt_log has %d line(s) for %d attempt(s)"
                 % (what, len(e["attempt_log"]), attempts))
        if not any(ladder_word in line for line in e["attempt_log"]):
            fail("%s: no attempt was reclaimed as %r:\n%s"
                 % (what, ladder_word, "\n".join(e["attempt_log"])))
        ref = {(r["workload"], r["contention"]): strip(r)
               for r in load(reference)["runs"]}
        if len(ok) != len(ref) - 1:
            fail("%s: %d healthy cells, expected %d"
                 % (what, len(ok), len(ref) - 1))
        for r in ok:
            key = (r["workload"], r["contention"])
            if strip(r) != ref[key]:
                fail("%s: healthy cell %r differs from the reference"
                     % (what, key))
        print("chaos_spool: %s: 1 quarantined (%s, shard %s, token "
              "%d, %d attempt(s)), %d healthy cells match"
              % (what, ladder_word, e["shard"], e["fencing_token"],
                 attempts, len(ok)))


def pid_running(pid):
    """True when `pid` is alive and not a zombie. A worker SIGKILLed
    together with its broker stays a zombie until init reaps it, and
    plain kill(pid, 0) still succeeds on zombies."""
    try:
        with open("/proc/%d/stat" % pid) as f:
            # comm may contain spaces/parens; state follows the last ')'.
            state = f.read().rpartition(")")[2].split()[0]
        return state not in ("Z", "X")
    except OSError:
        return False


def lease_pids(spool):
    pids = []
    leases = os.path.join(spool, "leases")
    for name in os.listdir(leases) if os.path.isdir(leases) else []:
        try:
            with open(os.path.join(leases, name)) as f:
                pids.append(int(json.load(f)["pid"]))
        except (OSError, ValueError, KeyError):
            pass
    return [p for p in pids if p > 0]


def main():
    if len(sys.argv) != 4:
        sys.stderr.write(
            "usage: chaos_spool.py PINTESIM CHECKER WORKDIR\n")
        return 2
    h = Harness(sys.argv[1], sys.argv[2], sys.argv[3])
    small = h.common(2000, 4000, 2000)

    # Fault-free process-mode reference: the determinism baseline the
    # spool backend is held to.
    reference = h.path("spool_reference.json")
    if os.path.exists(reference):
        os.remove(reference)
    h.run(small + ["--isolation=process", "--out", reference])

    # 1. Fault-free spool campaign: bitwise vs process mode.
    extra, _, out = h.spool_args("clean", [])
    h.run(small + extra)
    h.check_schema(out)
    h.expect_bitwise(out, reference, "clean spool campaign")
    print("chaos_spool: clean: spool report bitwise-matches process "
          "mode")

    # 2. Transient crash: first attempt dies, retry recovers, data is
    # indistinguishable from a fault-free campaign.
    extra, _, out = h.spool_args("flaky", ["--max-retries", "2"])
    h.run(small + extra, fault="worker-flaky:3")
    h.expect_bitwise(out, reference, "flaky-retry campaign")
    print("chaos_spool: flaky: retried cell recovered bitwise")

    # 3. Permanent crash: every attempt aborts; the dead-child fast
    # path reclaims without waiting out the lease TTL.
    extra, _, out = h.spool_args("crash", ["--max-retries", "2"])
    h.run(small + extra, fault="worker-crash:3", expect_exit=1)
    h.expect_quarantine(out, reference, "crash", attempts=2,
                        ladder_word="worker exited")

    # 4. Wedged worker: no heartbeats, SIGTERM ignored; the lease TTL
    # is the only thing that gets the shard back.
    extra, _, out = h.spool_args("hang", ["--max-retries", "1",
                                          "--lease-ttl", "1"])
    h.run(small + extra, fault="worker-hang:2", expect_exit=1)
    h.expect_quarantine(out, reference, "hang", attempts=1,
                        ladder_word="lease expired")

    # 5. Torn frame: half a record then a wedge; the tail must stay
    # buffered in the scanner and never reach the report.
    extra, _, out = h.spool_args("torn", ["--max-retries", "1",
                                          "--lease-ttl", "1"])
    h.run(small + extra, fault="worker-torn-frame:5", expect_exit=1)
    h.expect_quarantine(out, reference, "torn", attempts=1,
                        ladder_word="lease expired")

    # 6. Power cut: SIGKILL the broker's whole process group
    # mid-campaign, then restart with identical flags. Bigger cells so
    # the kill demonstrably lands mid-flight; its own fault-free
    # reference at the same scale.
    big = h.common(60000, 2000000, 100000)
    big_ref = h.path("spool_reference_big.json")
    if os.path.exists(big_ref):
        os.remove(big_ref)
    h.run(big + ["--out", big_ref])

    extra, spool, out = h.spool_args(
        "kill", ["--max-retries", "3", "--lease-ttl", "3"])
    env = dict(os.environ)
    env.pop("PINTE_INJECT_FAULT", None)
    broker = subprocess.Popen(big + extra, env=env,
                              stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL,
                              start_new_session=True)
    done_dir = os.path.join(spool, "done")
    deadline = time.monotonic() + 120
    try:
        while True:
            if broker.poll() is not None:
                fail("kill: campaign finished before the kill "
                     "landed; grow the big-cell sizing")
            done = (len(os.listdir(done_dir))
                    if os.path.isdir(done_dir) else 0)
            if 0 < done < CELLS:
                break
            if time.monotonic() > deadline:
                fail("kill: no done markers after 120s")
            time.sleep(0.05)
        workers = lease_pids(spool)
        os.killpg(broker.pid, signal.SIGKILL)
    finally:
        if broker.poll() is None and broker.returncode is None:
            try:
                os.killpg(broker.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        broker.wait()
    time.sleep(0.3)
    for pid in workers:
        if pid_running(pid):
            fail("kill: worker pid %d survived the group kill" % pid)
    if os.path.exists(out):
        fail("kill: report published despite the mid-campaign kill")
    print("chaos_spool: kill: broker + %d worker(s) SIGKILLed with "
          "%d/%d cells done" % (len(workers), done, CELLS))

    h.run(big + extra, timeout=240)
    h.check_schema(out)
    h.expect_bitwise(out, big_ref, "restarted campaign")
    print("chaos_spool: kill: restart completed from the spool alone, "
          "bitwise vs fault-free")

    print("chaos_spool: all spool chaos scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
