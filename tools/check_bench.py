#!/usr/bin/env python3
"""Validate a BENCH_*.json hot-path perf-baseline document.

Usage:
    check_bench.py [BENCH_hotpath.json]     # file, or stdin when omitted
    check_bench.py --require-label pr6-post BENCH_hotpath.json

A baseline is a pinte-report JSON document (any schema version this
repo emits) whose tables contain exactly one "hotpath_bench" table.
Beyond report well-formedness the checker enforces what makes the file
usable as a perf trajectory:

  - the hotpath_bench columns are exactly label/kernel/work_items/
    reps/best_wall_s/rate_per_s/checksum, in that order;
  - every cell is finite (NaN/Infinity rejected), wall times are
    strictly positive, work_items and checksums are integers;
  - best-of-N metadata is honest: reps >= 2 for every committed row
    (a single-shot wall time is noise, not a baseline), and
    rate_per_s equals work_items / best_wall_s;
  - (label, kernel) pairs are unique — a duplicated measurement point
    would make later speedup ratios ambiguous;
  - kernel sets across labels are nested (each is a subset or superset
    of every other), so any kernel is comparable across every label
    that measured it. Coverage may grow over time — a later PR may add
    a kernel — but two labels measuring disjoint or partially
    overlapping suites would make the trajectory ambiguous.

--require-label LABEL additionally fails unless the given label is
present (used by CI to prove a PR recorded its measurement point).
Exit status 0 when the document conforms, 1 with a diagnostic per
violation otherwise. Standard library only.
"""

import json
import math
import sys

TABLE = "hotpath_bench"
COLUMNS = [
    "label",
    "kernel",
    "work_items",
    "reps",
    "best_wall_s",
    "rate_per_s",
    "checksum",
]
RATE_TOLERANCE = 1e-6  # relative; rates round-trip through %.1f


def reject_constant(token):
    raise ValueError(f"non-finite number {token}")


def is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


class Checker:
    def __init__(self):
        self.errors = []

    def error(self, path, message):
        self.errors.append(f"{path}: {message}")

    def check_row(self, row, path):
        if not isinstance(row, list) or len(row) != len(COLUMNS):
            self.error(path, f"expected {len(COLUMNS)}-cell array")
            return None
        label, kernel, work, reps, best, rate, checksum = row
        if not isinstance(label, str) or not label:
            self.error(f"{path}[0]", "label must be a non-empty string")
            return None
        if not isinstance(kernel, str) or not kernel:
            self.error(f"{path}[1]", "kernel must be a non-empty string")
            return None
        ok = True
        if not is_int(work) or work <= 0:
            self.error(f"{path}[2]", f"work_items must be a positive "
                       f"integer, got {work!r}")
            ok = False
        if not is_int(reps) or reps < 2:
            self.error(
                f"{path}[3]",
                f"reps must be an integer >= 2 (best-of-N needs N "
                f"repetitions to mean anything), got {reps!r}",
            )
            ok = False
        if not is_num(best) or not math.isfinite(best) or best <= 0:
            self.error(f"{path}[4]", f"best_wall_s must be a positive "
                       f"finite number, got {best!r}")
            ok = False
        if not is_num(rate) or not math.isfinite(rate) or rate <= 0:
            self.error(f"{path}[5]", f"rate_per_s must be a positive "
                       f"finite number, got {rate!r}")
            ok = False
        if not is_int(checksum) or checksum < 0:
            self.error(f"{path}[6]", f"checksum must be a non-negative "
                       f"integer, got {checksum!r}")
            ok = False
        if ok:
            expected = work / best
            if abs(rate - expected) > RATE_TOLERANCE * max(
                rate, expected
            ):
                self.error(
                    f"{path}[5]",
                    f"rate_per_s {rate} but work_items/best_wall_s "
                    f"= {expected}",
                )
        return (label, kernel)

    def check_document(self, doc, require_label):
        if not isinstance(doc, dict):
            self.error("$", "top level must be an object")
            return
        if doc.get("schema") != "pinte-report":
            self.error(
                "$.schema",
                f"expected 'pinte-report', got {doc.get('schema')!r}",
            )
        tables = doc.get("tables")
        if not isinstance(tables, list):
            self.error("$.tables", "expected array")
            return
        bench = [
            t
            for t in tables
            if isinstance(t, dict) and t.get("name") == TABLE
        ]
        if len(bench) != 1:
            self.error(
                "$.tables",
                f"expected exactly one '{TABLE}' table, found "
                f"{len(bench)}",
            )
            return
        table = bench[0]
        tpath = f"$.tables[{tables.index(table)}]"
        if table.get("columns") != COLUMNS:
            self.error(
                f"{tpath}.columns",
                f"expected {COLUMNS}, got {table.get('columns')!r}",
            )
            return
        rows = table.get("rows")
        if not isinstance(rows, list) or not rows:
            self.error(f"{tpath}.rows", "expected non-empty array")
            return

        seen = {}
        kernels_by_label = {}
        for i, row in enumerate(rows):
            key = self.check_row(row, f"{tpath}.rows[{i}]")
            if key is None:
                continue
            if key in seen:
                self.error(
                    f"{tpath}.rows[{i}]",
                    f"duplicate measurement point {key} "
                    f"(first at row {seen[key]})",
                )
            seen[key] = i
            kernels_by_label.setdefault(key[0], set()).add(key[1])

        # Kernel coverage may grow across the trajectory (a later PR
        # can add a kernel) but never fork: every pair of labels must
        # be subset-comparable or their speedup ratios are ambiguous.
        by_size = sorted(
            (frozenset(v) for v in kernels_by_label.values()), key=len
        )
        for smaller, larger in zip(by_size, by_size[1:]):
            if not smaller <= larger:
                self.error(
                    f"{tpath}.rows",
                    "labels carry non-nested kernel sets, so "
                    "trajectory points are not comparable: "
                    + "; ".join(
                        f"{label}={sorted(ks)}"
                        for label, ks in sorted(
                            kernels_by_label.items()
                        )
                    ),
                )
                break
        if require_label and require_label not in kernels_by_label:
            self.error(
                f"{tpath}.rows",
                f"required label {require_label!r} absent "
                f"(have {sorted(kernels_by_label)})",
            )


def main(argv):
    args = argv[1:]
    require_label = None
    if args and args[0] == "--require-label":
        if len(args) < 2:
            sys.stderr.write("check_bench: --require-label needs a "
                             "value\n")
            return 2
        require_label = args[1]
        args = args[2:]
    if len(args) > 1 or (args and args[0] in ("-h", "--help")):
        sys.stderr.write(__doc__)
        return 2
    try:
        if args and args[0] != "-":
            with open(args[0], "r", encoding="utf-8") as f:
                text = f.read()
            source = args[0]
        else:
            text = sys.stdin.read()
            source = "<stdin>"
    except OSError as e:
        sys.stderr.write(f"check_bench: {e}\n")
        return 1

    try:
        doc = json.loads(text, parse_constant=reject_constant)
    except (json.JSONDecodeError, ValueError) as e:
        sys.stderr.write(f"check_bench: {source}: not JSON: {e}\n")
        return 1

    checker = Checker()
    checker.check_document(doc, require_label)
    if checker.errors:
        for error in checker.errors:
            sys.stderr.write(f"check_bench: {source}: {error}\n")
        sys.stderr.write(
            f"check_bench: {source}: {len(checker.errors)} "
            f"violation(s)\n"
        )
        return 1

    table = next(
        t for t in doc["tables"] if t.get("name") == TABLE
    )
    labels = sorted({row[0] for row in table["rows"]})
    print(
        f"check_bench: {source}: valid baseline "
        f"({len(table['rows'])} entries, labels: {', '.join(labels)})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
