#!/usr/bin/env python3
"""Assert two pinte-report JSON documents are identical modulo timing.

Usage:
    check_bitwise.py golden.json candidate.json

The simulator is deterministic from its seeds: the same binary —
or any refactor of it that claims behavioral equivalence — must
reproduce a golden report bit-for-bit, except for `cpu_seconds`,
the one wall-clock-derived field a report carries. This is the
regression harness that makes hot-path rewrites (SoA cache layout,
devirtualized dispatch, batched trace decode) safe to land: a single
flipped hit/miss anywhere in a run changes some counter downstream
and the comparison names the exact path that diverged.

Exit status 0 when equivalent; 1 with one diagnostic per divergent
path otherwise (capped). Standard library only.
"""

import json
import sys

MAX_DIFFS = 20

# The only fields allowed to differ: derived from host timing, not
# from simulation state.
TIMING_FIELDS = {"cpu_seconds"}


def strip_timing(node):
    if isinstance(node, dict):
        return {
            k: strip_timing(v)
            for k, v in node.items()
            if k not in TIMING_FIELDS
        }
    if isinstance(node, list):
        return [strip_timing(v) for v in node]
    return node


def diff(a, b, path, out):
    if len(out) >= MAX_DIFFS:
        return
    if type(a) is not type(b):
        out.append(
            f"{path}: type {type(a).__name__} vs {type(b).__name__}"
        )
        return
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a:
                out.append(f"{path}.{k}: only in candidate")
            elif k not in b:
                out.append(f"{path}.{k}: only in golden")
            else:
                diff(a[k], b[k], f"{path}.{k}", out)
        return
    if isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: {len(a)} vs {len(b)} elements")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            diff(x, y, f"{path}[{i}]", out)
        return
    # Scalars compare exactly — including floats: both documents were
    # produced by the same emitter at the same precision, so any
    # difference is a real behavioral divergence, not rounding.
    if a != b:
        out.append(f"{path}: {a!r} vs {b!r}")


def main(argv):
    if len(argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    docs = []
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            sys.stderr.write(f"check_bitwise: {path}: {e}\n")
            return 1

    golden, candidate = (strip_timing(d) for d in docs)
    out = []
    diff(golden, candidate, "$", out)
    if out:
        for line in out:
            sys.stderr.write(f"check_bitwise: {line}\n")
        more = "" if len(out) < MAX_DIFFS else " (further diffs capped)"
        sys.stderr.write(
            f"check_bitwise: {argv[2]} diverges from {argv[1]}: "
            f"{len(out)} path(s){more}\n"
        )
        return 1
    print(
        f"check_bitwise: {argv[2]} identical to {argv[1]} "
        f"(modulo {', '.join(sorted(TIMING_FIELDS))})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
