# ctest helper: the bitwise-identical-report regression matrix.
#
# Runs pintesim across a configuration matrix chosen to light up every
# hot-path subsystem the engine refactors touch — all replacement
# policies, every inclusion mode, prefetchers on and off, PInTE scopes,
# pair co-runs, an isolation run, a sweep, and a full --report machine
# dump with paranoid audits — and asserts each JSON report is identical
# (modulo cpu_seconds, see check_bitwise.py) to the golden captured in
# tests/golden/bitwise/ with the pre-refactor engine.
#
# Invoked from tools/CMakeLists.txt with -DPINTESIM=... -DPYTHON=...
# -DCHECKER=<check_bitwise.py> -DGOLDEN_DIR=... -DWORKDIR=...
#
# To re-capture the goldens after an *intentional* behavior change
# (document why in the commit), add -DMODE=record: reports are then
# written straight into GOLDEN_DIR instead of being compared.

if(NOT MODE)
    set(MODE check)
endif()

# name|args — one matrix row per entry, |-separated so CMake's list
# flattening leaves rows intact. Warmup/ROI are pinned below so the
# goldens do not depend on driver defaults.
set(matrix
    "lru_base|-w|450.soplex|-p|0.2|--seed|1"
    "rrip_incl_pf|-w|429.mcf|-p|0.35|--policy|rrip|--inclusion|inclusive|--prefetch|NN0|--seed|7"
    "plru_excl_scope|-w|470.lbm|-p|0.1|--policy|plru|--inclusion|exclusive|--scope|l2+llc|--seed|2"
    "nmru_pf_dram|-w|462.libquantum|-p|0.3|--policy|nmru|--prefetch|NNN|--dram-complement|40|--seed|3"
    "drrip_report_ts|-w|433.milc|-p|0.25|--policy|drrip|--prefetch|NNI|--sample-interval|2048|--report|--paranoid=2048|--seed|4"
    "pair_rrip|-w|450.soplex|--pair|470.lbm|--policy|rrip|--seed|5"
    "random_iso|-w|401.bzip2|--isolation|--policy|random|--seed|3"
    "l2scope_sweep|-w|444.namd|--sweep|--scope|l2|--jobs|2|--seed|6"
    "lhd_pinte|-w|450.soplex|-p|0.3|--policy|lhd|--seed|8"
)

foreach(entry IN LISTS matrix)
    string(REPLACE "|" ";" row "${entry}")
    list(POP_FRONT row name)
    # The sweep's 12 runs make it the expensive row; shrink it.
    if(name STREQUAL "l2scope_sweep")
        set(sizing --warmup 4000 --roi 12000)
    else()
        set(sizing --warmup 8000 --roi 30000)
    endif()

    if(MODE STREQUAL "record")
        set(report "${GOLDEN_DIR}/${name}.json")
    else()
        set(report "${WORKDIR}/bitwise_${name}.json")
    endif()

    execute_process(
        COMMAND ${PINTESIM} ${row} ${sizing}
            --format json --out ${report}
        RESULT_VARIABLE sim_rc
        OUTPUT_VARIABLE sim_out
        ERROR_VARIABLE sim_err)
    if(NOT sim_rc EQUAL 0)
        message(FATAL_ERROR
            "pintesim ${name} failed (${sim_rc}):\n${sim_out}\n"
            "${sim_err}")
    endif()

    if(MODE STREQUAL "record")
        message(STATUS "recorded golden ${report}")
    else()
        execute_process(
            COMMAND ${PYTHON} ${CHECKER}
                ${GOLDEN_DIR}/${name}.json ${report}
            RESULT_VARIABLE cmp_rc
            OUTPUT_VARIABLE cmp_out
            ERROR_VARIABLE cmp_err)
        if(NOT cmp_rc EQUAL 0)
            message(FATAL_ERROR
                "bitwise regression in matrix row '${name}' "
                "(${cmp_rc}):\n${cmp_out}\n${cmp_err}")
        endif()
        message(STATUS "${cmp_out}")
    endif()
endforeach()
