# ctest helper: end-to-end checkpoint/resume acceptance. A run that
# checkpoints mid-ROI leaves its last snapshot on disk; re-invoking
# the identical command resumes from it and must publish a report
# bit-for-bit equal (modulo cpu_seconds) to a straight-through run.
# Invoked from tools/CMakeLists.txt with -DPINTESIM=... -DPYTHON=...
# -DCHECKER=... (check_bitwise.py) -DWORKDIR=...

set(straight "${WORKDIR}/ckpt_straight.json")
set(resumed "${WORKDIR}/ckpt_resumed.json")
set(ckpt "${WORKDIR}/ckpt_roundtrip.bin")
file(REMOVE ${ckpt})

set(common
    --workload 450.soplex --pinduce 0.2
    --warmup 4000 --roi 30000 --format json)

execute_process(
    COMMAND ${PINTESIM} ${common} --out ${straight}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "straight run failed (${rc}):\n${out}\n${err}")
endif()

# Checkpoint every 12000 ROI instructions: snapshots land at 12000 and
# 24000, and the 24000 one survives the completed run.
execute_process(
    COMMAND ${PINTESIM} ${common}
        --checkpoint ${ckpt} --checkpoint-every 12000
        --out "${WORKDIR}/ckpt_first.json"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "checkpointing run failed (${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS ${ckpt})
    message(FATAL_ERROR "run left no checkpoint at ${ckpt}")
endif()

execute_process(
    COMMAND ${PINTESIM} ${common}
        --checkpoint ${ckpt} --checkpoint-every 12000
        --out ${resumed}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resumed run failed (${rc}):\n${out}\n${err}")
endif()
if(NOT "${out}${err}" MATCHES "resumed 450.soplex at 24000/30000")
    message(FATAL_ERROR
        "second run did not resume from the checkpoint:\n${out}\n${err}")
endif()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} ${straight} ${resumed}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "resumed report diverged from straight-through (${rc}):\n"
        "${out}\n${err}")
endif()
message(STATUS "resumed report bitwise-identical to straight run")
