# ctest helper: the end-to-end quarantine acceptance check. One job of
# a pintesim sweep is poisoned via PINTE_INJECT_FAULT; the campaign
# must (1) exit nonzero, (2) still publish a schema-valid v2 report,
# (3) record exactly one failed run in the failures summary while every
# other cell carries data. Invoked from tools/CMakeLists.txt with
# -DPINTESIM=... -DPYTHON=... -DCHECKER=... -DWORKDIR=...

set(report "${WORKDIR}/pintesim_faulted_report.json")
file(REMOVE ${report})

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env PINTE_INJECT_FAULT=job:3
        ${PINTESIM}
        --workload 450.soplex --sweep
        --warmup 2000 --roi 4000 --sample 2000 --jobs 2
        --format json --out ${report}
    RESULT_VARIABLE sim_rc
    OUTPUT_VARIABLE sim_out
    ERROR_VARIABLE sim_err)
if(sim_rc EQUAL 0)
    message(FATAL_ERROR
        "poisoned sweep exited 0; a failed job must surface in the "
        "exit status:\n${sim_out}\n${sim_err}")
endif()
if(NOT sim_err MATCHES "sweep jobs failed")
    message(FATAL_ERROR
        "poisoned sweep did not report its failure count on stderr:\n"
        "${sim_err}")
endif()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} ${report}
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "faulted report failed schema validation (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()

execute_process(
    COMMAND ${PYTHON} -c
"import json, sys
d = json.load(open(sys.argv[1]))
f = d['failures']
assert f['failed'] == 1, f
failed = [r for r in d['runs'] if r['status'] == 'failed']
ok = [r for r in d['runs'] if r['status'] == 'ok']
assert len(failed) == 1 and len(ok) == f['total'] - 1, f
assert 'injected fault: job' in failed[0]['error']['message'], failed
assert all('metrics' in r for r in ok)
print('check_faults: 1 quarantined, %d healthy runs' % len(ok))"
        ${report}
    RESULT_VARIABLE quarantine_rc
    OUTPUT_VARIABLE quarantine_out
    ERROR_VARIABLE quarantine_err)
if(NOT quarantine_rc EQUAL 0)
    message(FATAL_ERROR
        "quarantine check failed (${quarantine_rc}):\n"
        "${quarantine_out}\n${quarantine_err}")
endif()
message(STATUS "${check_out}")
message(STATUS "${quarantine_out}")
