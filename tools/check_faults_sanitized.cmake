# ctest helper: build and run the fault-injection suite in a nested
# build tree configured with PINTE_SANITIZE=address,undefined, so the
# failure paths (throw/unwind across the runner, the atomic publish
# rename, journal replay, the hang watchdog) are exercised under
# ASan+UBSan. Invoked from tools/CMakeLists.txt with -DSOURCE_DIR=...
# -DWORKDIR=... -DBUILD_TYPE=...; the nested tree is cached between
# runs, so only the first invocation pays the configure+build cost.

execute_process(
    COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${WORKDIR}
        -DPINTE_SANITIZE=address,undefined
        -DCMAKE_BUILD_TYPE=${BUILD_TYPE}
    RESULT_VARIABLE conf_rc
    OUTPUT_VARIABLE conf_out
    ERROR_VARIABLE conf_err)
if(NOT conf_rc EQUAL 0)
    message(FATAL_ERROR
        "sanitized configure failed (${conf_rc}):\n"
        "${conf_out}\n${conf_err}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${WORKDIR}
        --target test_faults --parallel 4
    RESULT_VARIABLE build_rc
    OUTPUT_VARIABLE build_out
    ERROR_VARIABLE build_err)
if(NOT build_rc EQUAL 0)
    message(FATAL_ERROR
        "sanitized build failed (${build_rc}):\n"
        "${build_out}\n${build_err}")
endif()

execute_process(
    COMMAND ${WORKDIR}/tests/test_faults
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "sanitized fault suite failed (${run_rc}):\n"
        "${run_out}\n${run_err}")
endif()
message(STATUS "sanitized fault suite passed")
