# ctest helper: keep the perf-baseline path from rotting. Runs the
# hot-path harness in quick mode (smoke-size kernels, 2 reps), then
# validates the produced document with check_bench.py — including that
# the requested label landed. Invoked from tools/CMakeLists.txt with
# -DBENCH_HOTPATH=... -DPYTHON=... -DCHECKER=<check_bench.py>
# -DWORKDIR=...

set(out "${WORKDIR}/perf_smoke.json")
file(REMOVE ${out})

execute_process(
    COMMAND ${BENCH_HOTPATH} --quick --label=smoke --reps=2
        --scratch=${WORKDIR} --out=${out}
    RESULT_VARIABLE bench_rc
    OUTPUT_VARIABLE bench_out
    ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "bench_hotpath failed (${bench_rc}):\n${bench_out}\n"
        "${bench_err}")
endif()

# Run it twice: the second batch must merge (replace label 'smoke',
# keep 'smoke2'), exercising the trajectory-append path CI relies on.
execute_process(
    COMMAND ${BENCH_HOTPATH} --quick --label=smoke2 --reps=2
        --scratch=${WORKDIR} --out=${out}
    RESULT_VARIABLE bench_rc
    OUTPUT_VARIABLE bench_out
    ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "bench_hotpath merge run failed (${bench_rc}):\n${bench_out}\n"
        "${bench_err}")
endif()

foreach(label smoke smoke2)
    execute_process(
        COMMAND ${PYTHON} ${CHECKER} --require-label ${label} ${out}
        RESULT_VARIABLE check_rc
        OUTPUT_VARIABLE check_out
        ERROR_VARIABLE check_err)
    if(NOT check_rc EQUAL 0)
        message(FATAL_ERROR
            "baseline validation failed (${check_rc}):\n"
            "${check_out}\n${check_err}")
    endif()
endforeach()
message(STATUS "${check_out}")
