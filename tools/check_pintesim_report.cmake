# ctest helper: run pintesim at a tiny scale, write a JSON report, and
# validate it with check_report.py. Invoked from tools/CMakeLists.txt
# with -DPINTESIM=... -DPYTHON=... -DCHECKER=... -DWORKDIR=...

set(report "${WORKDIR}/pintesim_report.json")

execute_process(
    COMMAND ${PINTESIM}
        --workload 450.soplex --pinduce 0.2 --report
        --warmup 2000 --roi 6000 --sample 3000
        --format json --out ${report}
    RESULT_VARIABLE sim_rc
    OUTPUT_VARIABLE sim_out
    ERROR_VARIABLE sim_err)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR
        "pintesim failed (${sim_rc}):\n${sim_out}\n${sim_err}")
endif()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} ${report}
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "schema validation failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
