# ctest helper: end-to-end crash-containment acceptance for the
# process-isolated campaign backend. Two chaos campaigns run against a
# fault-free thread-mode reference:
#
#  1. worker-crash: one forked worker abort()s on every attempt. The
#     campaign must exhaust the retry budget, quarantine the cell with
#     its death signal and full attempt history, exit nonzero, and
#     still publish a schema-valid v5 report whose healthy cells are
#     bitwise-identical (modulo cpu_seconds) to the reference.
#
#  2. worker-hang: one worker ignores SIGTERM and wedges without
#     heartbeating. Under a short --job-timeout the parent must
#     escalate SIGTERM -> SIGKILL from outside, quarantine the cell as
#     a timeout, and the campaign must still complete.
#
# Invoked from tools/CMakeLists.txt with -DPINTESIM=... -DPYTHON=...
# -DCHECKER=... (check_report.py) -DWORKDIR=...

set(reference "${WORKDIR}/procisol_reference.json")
set(crashed "${WORKDIR}/procisol_crashed.json")
set(hung "${WORKDIR}/procisol_hung.json")
file(REMOVE ${reference} ${crashed} ${hung})

set(common
    --workload 450.soplex --sweep
    --warmup 2000 --roi 4000 --sample 2000 --jobs 2
    --format json)

# Fault-free thread-mode reference: the determinism baseline.
execute_process(
    COMMAND ${PINTESIM} ${common} --out ${reference}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "reference sweep failed (${rc}):\n${out}\n${err}")
endif()

# Chaos 1: a worker that dies by SIGABRT on every attempt. Two
# attempts are budgeted so the quarantined cell demonstrably retried.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env PINTE_INJECT_FAULT=worker-crash:3
        ${PINTESIM} ${common} --isolation=process --max-retries 2
        --out ${crashed}
    RESULT_VARIABLE sim_rc
    OUTPUT_VARIABLE sim_out
    ERROR_VARIABLE sim_err)
if(sim_rc EQUAL 0)
    message(FATAL_ERROR
        "crash-injected campaign exited 0; a lost worker must surface "
        "in the exit status:\n${sim_out}\n${sim_err}")
endif()
if(NOT sim_err MATCHES "sweep jobs failed")
    message(FATAL_ERROR
        "crash-injected campaign did not report its failure count on "
        "stderr:\n${sim_err}")
endif()

# Chaos 2: a worker that ignores SIGTERM and never heartbeats. The
# 1-second deadline must be enforced from the parent.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env PINTE_INJECT_FAULT=worker-hang:2
        ${PINTESIM} ${common} --isolation=process --job-timeout 1
        --out ${hung}
    RESULT_VARIABLE hang_rc
    OUTPUT_VARIABLE hang_out
    ERROR_VARIABLE hang_err)
if(hang_rc EQUAL 0)
    message(FATAL_ERROR
        "hang-injected campaign exited 0; a timed-out worker must "
        "surface in the exit status:\n${hang_out}\n${hang_err}")
endif()
if(NOT hang_err MATCHES "sweep jobs failed")
    message(FATAL_ERROR
        "hang-injected campaign did not report its failure count on "
        "stderr:\n${hang_err}")
endif()

# Both chaos reports must still be schema-valid v5 documents.
foreach(doc ${crashed} ${hung})
    execute_process(
        COMMAND ${PYTHON} ${CHECKER} ${doc}
        RESULT_VARIABLE check_rc
        OUTPUT_VARIABLE check_out
        ERROR_VARIABLE check_err)
    if(NOT check_rc EQUAL 0)
        message(FATAL_ERROR
            "${doc} failed schema validation (${check_rc}):\n"
            "${check_out}\n${check_err}")
    endif()
    message(STATUS "${check_out}")
endforeach()

# Quarantine metadata + healthy-cell determinism, per chaos document:
#  - exactly one failed cell, carrying the expected error kind, a
#    nonzero death signal, and a coherent attempt history;
#  - every healthy cell bitwise-equal (modulo cpu_seconds) to the
#    same (workload, contention) cell of the fault-free reference.
execute_process(
    COMMAND ${PYTHON} -c
"import json, sys

def strip(node):
    if isinstance(node, dict):
        return {k: strip(v) for k, v in node.items()
                if k != 'cpu_seconds'}
    if isinstance(node, list):
        return [strip(v) for v in node]
    return node

ref_doc = json.load(open(sys.argv[1]))
ref = {(r['workload'], r['contention']): strip(r)
       for r in ref_doc['runs']}

for path, kind, attempts_floor in [(sys.argv[2], 'worker', 2),
                                   (sys.argv[3], 'timeout', 1)]:
    d = json.load(open(path))
    assert d['schema_version'] >= 5, d['schema_version']
    failed = [r for r in d['runs'] if r['status'] == 'failed']
    ok = [r for r in d['runs'] if r['status'] == 'ok']
    assert len(failed) == 1, (path, len(failed))
    assert len(ok) == len(ref) - 1, (path, len(ok))
    e = failed[0]['error']
    assert e['kind'] == kind, (path, e['kind'])
    assert e['signal'] > 0, (path, e)
    assert e['attempts'] >= attempts_floor, (path, e)
    assert len(e['attempt_log']) == e['attempts'], (path, e)
    for r in ok:
        key = (r['workload'], r['contention'])
        assert strip(r) == ref[key], (path, key)
    print('%s: 1 quarantined (%s, signal %d, %d attempt(s)), '
          '%d healthy cells match the reference'
          % (path.rsplit('/', 1)[-1], e['kind'], e['signal'],
             e['attempts'], len(ok)))"
        ${reference} ${crashed} ${hung}
    RESULT_VARIABLE verify_rc
    OUTPUT_VARIABLE verify_out
    ERROR_VARIABLE verify_err)
if(NOT verify_rc EQUAL 0)
    message(FATAL_ERROR
        "process-isolation verification failed (${verify_rc}):\n"
        "${verify_out}\n${verify_err}")
endif()
message(STATUS "${verify_out}")
