#!/usr/bin/env python3
"""Validate a pinte-report JSON document (schema versions 1-6).

Usage:
    check_report.py [report.json]        # file, or stdin when omitted
    pintesim --report --format=json | check_report.py

Version 2 adds a per-run "status" field ("ok" | "failed"), an "error"
object on failed runs (which then carry no metrics/samples), and a
top-level "failures" summary. Non-finite numbers (NaN, Infinity) are
rejected everywhere: the emitter writes only finite doubles, and a
NaN that sneaks into a report poisons every downstream reduction.

Version 3 adds the observability payloads, all optional (omitted when
empty, so a sampling-off v3 document carries exactly the v2 fields):
a per-run "timeseries" object of per-interval counter deltas, a
per-run "histograms" array of log2-bucketed histograms, and a config
"sample_interval" field. On these the checker enforces the interval
invariants: cycle stamps strictly increase, every delta row matches
the path list, each histogram's bucket counts sum to its total, and
the LLC access/miss delta columns sum exactly to the end-of-run
counters the metrics section republishes (the sampler's conservation
identity).

Version 4 adds the interval-engine payloads, again optional so a
sampling-off v4 document carries exactly the v3 fields: a config
"sampling" object (mode / interval_length / detailed_fraction / seed)
and a per-run "sampled" object of per-metric mean and 95% CI
half-width estimates over the detailed intervals. The checker
enforces that the two appear together — every ok run of a document
whose config declares sampling must carry "sampled", and no run of a
detailed-only document may — plus the schedule identities
(detailed_intervals <= intervals, detailed_instructions <=
total_instructions, non-negative CI half-widths).

Version 5 adds the process-isolation loss record on failed runs,
optional and appearing as a unit (all four fields or none, only on
cells lost at the worker level under --isolation=process): "signal"
(terminating signal of the last attempt, 0 when the worker exited
instead), "exit_code", "attempts" (attempts consumed before
quarantine, >= 1), and "attempt_log" (one line per attempt, so its
length must equal "attempts"). In-process failures keep the exact v2
error shape, so a thread-mode v5 document carries exactly the v4
fields.

Version 6 adds the spool-loss provenance on failed runs, again
optional and appearing as a pair: "shard" (the non-empty shard id a
spool campaign quarantined the cell with) and "fencing_token" (the
token the shard held when its retry budget ran out, >= 1). The pair
appears only on cells lost at the broker level under
--isolation=spool, which are worker-level losses too, so a run
carrying it must also carry the full v5 loss record. Every other
document is field-identical to v5 output.

On v2+ documents the conservation identities the simulator maintains
are also enforced on every ok run: miss_rate equals
llc_misses/llc_accesses, counters and rate metrics stay within their
ranges, and the PInTE induction counters nest (triggers never exceed
accesses seen, invalidations never exceed requested evictions). A
report that type-checks but violates one of these carries numbers no
simulation could have produced.

Exit status 0 when the document conforms, 1 with a diagnostic per
violation otherwise. Standard library only.
"""

import json
import math
import sys

SCHEMA = "pinte-report"
SCHEMA_VERSIONS = (1, 2, 3, 4, 5, 6)

SAMPLING_CONFIG_FIELDS = {
    "mode": str,
    "interval_length": int,
    "detailed_fraction": float,
    "seed": int,
}

SAMPLED_FIELDS = {
    "mode": str,
    "interval_length": int,
    "detailed_fraction": float,
    "intervals": int,
    "detailed_intervals": int,
    "detailed_instructions": int,
    "total_instructions": int,
    "stats": list,
}

SAMPLED_STAT_FIELDS = {
    "name": str,
    "mean": float,
    "ci95": float,
}

SAMPLE_MODES = ("periodic", "random")

METRIC_FIELDS = {
    "ipc": float,
    "miss_rate": float,
    "amat": float,
    "interference_rate": float,
    "theft_rate": float,
    "l2_interference_rate": float,
    "branch_accuracy": float,
    "l1d_miss_rate": float,
    "l2_miss_rate": float,
    "prefetch_miss_rate": float,
    "l2_mpki": float,
    "llc_mpki": float,
    "llc_wb_share": float,
    "llc_occupancy_fraction": float,
    "llc_accesses": int,
    "llc_misses": int,
}

SAMPLE_FIELDS = {
    "ipc": float,
    "miss_rate": float,
    "amat": float,
    "interference_rate": float,
    "theft_rate": float,
    "occupancy_fraction": float,
    "instructions": int,
}

PINTE_FIELDS = {
    "accesses_seen": int,
    "triggers": int,
    "promotions": int,
    "invalidations": int,
    "requested_evicts": int,
}

CONFIG_FIELDS = {
    "fingerprint": str,
    "warmup": int,
    "roi": int,
    "sample_every": int,
    "run_seed": int,
}

ERROR_FIELDS = {
    "kind": str,
    "component": str,
    "path": str,
    "message": str,
}

# v5 process-isolation loss record, optional on a failed run's error
# object; the four fields appear together (keyed on "attempts").
LOSS_FIELDS = {
    "signal": int,
    "exit_code": int,
    "attempts": int,
    "attempt_log": list,
}

# v6 spool-loss provenance, optional on a failed run's error object;
# the pair appears together (keyed on "shard") and only alongside the
# v5 loss record — a broker-level loss is a worker-level loss too.
SPOOL_FIELDS = {
    "shard": str,
    "fencing_token": int,
}

FAILURES_FIELDS = {
    "failed": int,
    "total": int,
}

# Metrics that are ratios with a unit-interval range by construction.
# prefetch_miss_rate is NOT one of them: it is prefetch misses per
# issued prefetch, and one issued L1D prefetch that descends through
# L2 is counted as a miss at both levels, so the ratio's range is
# [0, 2] — it is checked with the nonnegative metrics below.
UNIT_RATE_METRICS = (
    "miss_rate",
    "l1d_miss_rate",
    "l2_miss_rate",
    "branch_accuracy",
    "llc_wb_share",
    "llc_occupancy_fraction",
)

# Close enough for a double that survived JSON serialization.
RATE_TOLERANCE = 1e-9


def reject_constant(token):
    raise ValueError(f"non-finite number {token}")


class Checker:
    def __init__(self):
        self.errors = []
        self.version = SCHEMA_VERSIONS[-1]

    def error(self, path, message):
        self.errors.append(f"{path}: {message}")

    def check_fields(self, obj, fields, path):
        if not isinstance(obj, dict):
            self.error(path, f"expected object, got {type(obj).__name__}")
            return
        for name, kind in fields.items():
            if name not in obj:
                self.error(path, f"missing field '{name}'")
                continue
            value = obj[name]
            # JSON integers satisfy float fields (1.0 serializes as 1),
            # but a float where an integer counter belongs is an error.
            if kind is float:
                ok = isinstance(value, (int, float)) and not isinstance(
                    value, bool
                )
                if ok and not math.isfinite(value):
                    ok = False
            elif kind is int:
                ok = isinstance(value, int) and not isinstance(value, bool)
            else:
                ok = isinstance(value, kind)
            if not ok:
                self.error(
                    f"{path}.{name}",
                    f"expected {kind.__name__}, "
                    f"got {type(value).__name__}: {value!r}",
                )
        for name in obj:
            if name not in fields:
                self.error(path, f"unknown field '{name}'")

    def check_failed_run(self, run, path):
        error = run.get("error")
        fields = ERROR_FIELDS
        # v5 process-isolation loss record: the four fields appear as
        # a unit (keyed on "attempts") and only on worker-level losses.
        has_loss = self.version >= 5 and isinstance(error, dict) and (
            "attempts" in error
        )
        if has_loss:
            fields = dict(ERROR_FIELDS, **LOSS_FIELDS)
        # v6 spool-loss provenance: the pair appears as a unit (keyed
        # on "shard") and rides only on a v5 loss record.
        has_spool = self.version >= 6 and isinstance(error, dict) and (
            "shard" in error
        )
        if has_spool:
            fields = dict(fields, **SPOOL_FIELDS)
        self.check_fields(error, fields, f"{path}.error")
        if has_loss:
            self.check_loss_record(error, f"{path}.error")
        if has_spool:
            self.check_spool_record(error, has_loss, f"{path}.error")
        for name in run:
            if name not in {"workload", "contention", "status", "error"}:
                self.error(
                    path, f"unknown field '{name}' on a failed run"
                )

    def check_loss_record(self, error, path):
        attempts = error.get("attempts")
        log = error.get("attempt_log")
        if isinstance(attempts, int) and attempts < 1:
            self.error(f"{path}.attempts", "expected >= 1")
        for name in ("signal", "exit_code"):
            value = error.get(name)
            if isinstance(value, int) and value < 0:
                self.error(f"{path}.{name}", "expected >= 0")
        if isinstance(log, list):
            if not all(isinstance(line, str) for line in log):
                self.error(f"{path}.attempt_log", "expected strings")
            if isinstance(attempts, int) and len(log) != attempts:
                self.error(
                    f"{path}.attempt_log",
                    f"expected {attempts} line(s) (one per attempt), "
                    f"got {len(log)}",
                )

    def check_spool_record(self, error, has_loss, path):
        if not has_loss:
            self.error(
                f"{path}.shard",
                "spool-loss provenance without the v5 loss record "
                "(a broker-level loss always consumes attempts)",
            )
        shard = error.get("shard")
        if isinstance(shard, str) and not shard:
            self.error(f"{path}.shard", "expected non-empty string")
        token = error.get("fencing_token")
        if isinstance(token, int) and not isinstance(token, bool) and (
            token < 1
        ):
            self.error(f"{path}.fencing_token", "expected >= 1")

    def check_run(self, run, path):
        if not isinstance(run, dict):
            self.error(path, "expected object")
            return
        shape_errors = len(self.errors)
        for name in ("workload", "contention"):
            if not isinstance(run.get(name), str):
                self.error(f"{path}.{name}", "expected string")
        status = run.get("status")
        if self.version >= 2:
            if status not in ("ok", "failed"):
                self.error(
                    f"{path}.status",
                    f"expected 'ok' or 'failed', got {status!r}",
                )
            if status == "failed":
                self.check_failed_run(run, path)
                return
        elif "status" in run:
            self.error(path, "unknown field 'status' (v1 document)")
        self.check_fields(
            run.get("metrics"), METRIC_FIELDS, f"{path}.metrics"
        )
        samples = run.get("samples")
        if not isinstance(samples, list):
            self.error(f"{path}.samples", "expected array")
        else:
            for i, sample in enumerate(samples):
                self.check_fields(
                    sample, SAMPLE_FIELDS, f"{path}.samples[{i}]"
                )
        reuse = run.get("reuse_histogram")
        if not isinstance(reuse, list) or not all(
            isinstance(c, int) and not isinstance(c, bool) and c >= 0
            for c in reuse or []
        ):
            self.error(
                f"{path}.reuse_histogram",
                "expected array of non-negative integers",
            )
        self.check_fields(run.get("pinte"), PINTE_FIELDS, f"{path}.pinte")
        cpu = run.get("cpu_seconds")
        if (
            not isinstance(cpu, (int, float))
            or isinstance(cpu, bool)
            or not math.isfinite(cpu)
        ):
            self.error(f"{path}.cpu_seconds", "expected finite number")
        known = {
            "workload",
            "contention",
            "metrics",
            "samples",
            "reuse_histogram",
            "pinte",
            "cpu_seconds",
        }
        if self.version >= 2:
            known.add("status")
        if self.version >= 3:
            known.update({"timeseries", "histograms"})
            if "timeseries" in run:
                self.check_timeseries(
                    run["timeseries"], f"{path}.timeseries"
                )
            if "histograms" in run:
                self.check_histograms(
                    run["histograms"], f"{path}.histograms"
                )
        if self.version >= 4:
            known.add("sampled")
            if "sampled" in run:
                self.check_sampled(run["sampled"], f"{path}.sampled")
        for name in run:
            if name not in known:
                self.error(path, f"unknown field '{name}'")
        if self.version >= 2 and len(self.errors) == shape_errors:
            self.check_conservation(run, path)

    def check_sampled(self, sd, path):
        """v4 interval-engine section: mean ± CI estimates."""
        shape_errors = len(self.errors)
        self.check_fields(sd, SAMPLED_FIELDS, path)
        if not isinstance(sd, dict):
            return
        mode = sd.get("mode")
        if isinstance(mode, str) and mode not in SAMPLE_MODES:
            self.error(
                f"{path}.mode",
                f"expected one of {SAMPLE_MODES}, got {mode!r}",
            )
        stats = sd.get("stats")
        if isinstance(stats, list):
            for i, s in enumerate(stats):
                self.check_fields(
                    s, SAMPLED_STAT_FIELDS, f"{path}.stats[{i}]"
                )
                if isinstance(s, dict):
                    ci = s.get("ci95")
                    if isinstance(ci, (int, float)) and ci < 0:
                        self.error(
                            f"{path}.stats[{i}].ci95",
                            f"negative half-width ({ci})",
                        )
        if len(self.errors) != shape_errors:
            return
        # Schedule identities (types are known good at this point).
        if sd["interval_length"] <= 0:
            self.error(
                f"{path}.interval_length", "expected positive integer"
            )
        if not 0.0 < sd["detailed_fraction"] <= 1.0:
            self.error(
                f"{path}.detailed_fraction",
                f"{sd['detailed_fraction']} outside (0, 1]",
            )
        if sd["detailed_intervals"] > sd["intervals"]:
            self.error(
                f"{path}.detailed_intervals",
                f"{sd['detailed_intervals']} detailed out of "
                f"{sd['intervals']} intervals",
            )
        if sd["detailed_instructions"] > sd["total_instructions"]:
            self.error(
                f"{path}.detailed_instructions",
                f"{sd['detailed_instructions']} measured out of "
                f"{sd['total_instructions']} total instructions",
            )

    def check_timeseries(self, ts, path):
        """v3 time-series section: per-interval counter deltas."""
        if not isinstance(ts, dict):
            self.error(path, "expected object")
            return
        interval = ts.get("interval_cycles")
        if (
            not isinstance(interval, int)
            or isinstance(interval, bool)
            or interval <= 0
        ):
            self.error(
                f"{path}.interval_cycles", "expected positive integer"
            )
        paths = ts.get("paths")
        if not isinstance(paths, list) or not all(
            isinstance(p, str) and p for p in paths or []
        ):
            self.error(
                f"{path}.paths", "expected array of non-empty strings"
            )
            paths = []
        cycles = ts.get("cycles")
        if not isinstance(cycles, list) or not all(
            isinstance(c, int) and not isinstance(c, bool) and c >= 0
            for c in cycles or []
        ):
            self.error(
                f"{path}.cycles",
                "expected array of non-negative integers",
            )
            cycles = []
        for i in range(1, len(cycles)):
            if cycles[i] <= cycles[i - 1]:
                self.error(
                    f"{path}.cycles[{i}]",
                    f"{cycles[i]} not greater than previous "
                    f"{cycles[i - 1]} (stamps must strictly increase)",
                )
        deltas = ts.get("deltas")
        if not isinstance(deltas, list):
            self.error(f"{path}.deltas", "expected array")
            deltas = []
        if cycles and len(deltas) != len(cycles):
            self.error(
                f"{path}.deltas",
                f"{len(deltas)} rows for {len(cycles)} cycle stamps",
            )
        for i, row in enumerate(deltas):
            if not isinstance(row, list) or not all(
                isinstance(d, int) and not isinstance(d, bool) and d >= 0
                for d in row or []
            ):
                self.error(
                    f"{path}.deltas[{i}]",
                    "expected array of non-negative integers",
                )
                continue
            if paths and len(row) != len(paths):
                self.error(
                    f"{path}.deltas[{i}]",
                    f"{len(row)} deltas for {len(paths)} paths",
                )
        for name in ts:
            if name not in {"interval_cycles", "paths", "cycles",
                            "deltas"}:
                self.error(path, f"unknown field '{name}'")

    def check_histograms(self, histograms, path):
        """v3 histogram section: log2-bucketed counts sum to total."""
        if not isinstance(histograms, list):
            self.error(path, "expected array")
            return
        for i, h in enumerate(histograms):
            hpath = f"{path}[{i}]"
            if not isinstance(h, dict):
                self.error(hpath, "expected object")
                continue
            if not isinstance(h.get("path"), str) or not h.get("path"):
                self.error(f"{hpath}.path", "expected non-empty string")
            total = h.get("total")
            if not isinstance(total, int) or isinstance(total, bool):
                self.error(f"{hpath}.total", "expected integer")
                total = None
            counts = h.get("counts")
            if not isinstance(counts, list) or not all(
                isinstance(c, int)
                and not isinstance(c, bool)
                and c >= 0
                for c in counts or []
            ):
                self.error(
                    f"{hpath}.counts",
                    "expected array of non-negative integers",
                )
            elif total is not None and sum(counts) != total:
                self.error(
                    f"{hpath}.counts",
                    f"bucket counts sum to {sum(counts)}, "
                    f"total claims {total}",
                )
            for name in h:
                if name not in {"path", "total", "counts"}:
                    self.error(hpath, f"unknown field '{name}'")

    def check_conservation(self, run, path):
        """Cross-field identities on an ok run (v2 documents).

        Only runs when the field-level checks produced no errors for
        this run, so every value below has the right type already.
        """
        metrics = run["metrics"]
        accesses = metrics["llc_accesses"]
        misses = metrics["llc_misses"]
        if misses > accesses:
            self.error(
                f"{path}.metrics.llc_misses",
                f"{misses} misses out of {accesses} accesses",
            )
        expected = misses / accesses if accesses else 0.0
        if abs(metrics["miss_rate"] - expected) > RATE_TOLERANCE:
            self.error(
                f"{path}.metrics.miss_rate",
                f"{metrics['miss_rate']} but llc_misses/llc_accesses "
                f"= {expected}",
            )
        for name in UNIT_RATE_METRICS:
            value = metrics[name]
            if not 0.0 <= value <= 1.0:
                self.error(
                    f"{path}.metrics.{name}",
                    f"rate {value} outside [0, 1]",
                )
        for name in ("ipc", "amat", "l2_mpki", "llc_mpki",
                     "interference_rate", "theft_rate",
                     "l2_interference_rate", "prefetch_miss_rate"):
            if metrics[name] < 0.0:
                self.error(
                    f"{path}.metrics.{name}", f"negative ({metrics[name]})"
                )
        pinte = run["pinte"]
        if pinte["triggers"] > pinte["accesses_seen"]:
            self.error(
                f"{path}.pinte.triggers",
                f"{pinte['triggers']} triggers out of "
                f"{pinte['accesses_seen']} accesses seen",
            )
        if pinte["invalidations"] > pinte["requested_evicts"]:
            self.error(
                f"{path}.pinte.invalidations",
                f"{pinte['invalidations']} invalidations for only "
                f"{pinte['requested_evicts']} requested evictions",
            )
        for i, sample in enumerate(run["samples"]):
            for name in ("miss_rate", "occupancy_fraction"):
                if not 0.0 <= sample[name] <= 1.0:
                    self.error(
                        f"{path}.samples[{i}].{name}",
                        f"rate {sample[name]} outside [0, 1]",
                    )
            for name in ("ipc", "amat", "interference_rate",
                         "theft_rate", "instructions"):
                if sample[name] < 0:
                    self.error(
                        f"{path}.samples[{i}].{name}",
                        f"negative ({sample[name]})",
                    )
        # v3 time-series conservation: the sampler snapshots its
        # baseline when measurement starts and finish() closes the
        # trailing partial interval, so a counter's column of deltas
        # sums to its end-of-run value exactly. The metrics section
        # republishes two of the sampled counters (a time series rides
        # on core 0's run only, whose metrics read the same registry
        # entries), which lets the identity be checked offline.
        if self.version >= 3 and "timeseries" in run:
            ts = run["timeseries"]
            for ts_path, metric in (
                ("llc.core0.accesses", "llc_accesses"),
                ("llc.core0.misses", "llc_misses"),
            ):
                if ts_path not in ts["paths"]:
                    continue
                col = ts["paths"].index(ts_path)
                total = sum(row[col] for row in ts["deltas"])
                if total != metrics[metric]:
                    self.error(
                        f"{path}.timeseries",
                        f"deltas of {ts_path} sum to {total}, "
                        f"metrics.{metric} is {metrics[metric]}",
                    )

    def check_table(self, table, path):
        if not isinstance(table, dict):
            self.error(path, "expected object")
            return
        if not isinstance(table.get("name"), str) or not table.get("name"):
            self.error(f"{path}.name", "expected non-empty string")
        columns = table.get("columns")
        if not isinstance(columns, list) or not all(
            isinstance(c, str) for c in columns or []
        ):
            self.error(f"{path}.columns", "expected array of strings")
            columns = []
        rows = table.get("rows")
        if not isinstance(rows, list):
            self.error(f"{path}.rows", "expected array")
            rows = []
        for i, row in enumerate(rows):
            if not isinstance(row, list):
                self.error(f"{path}.rows[{i}]", "expected array")
                continue
            if columns and len(row) != len(columns):
                self.error(
                    f"{path}.rows[{i}]",
                    f"{len(row)} cells for {len(columns)} columns",
                )
            for j, cell in enumerate(row):
                if not isinstance(cell, (str, int, float)) or isinstance(
                    cell, bool
                ):
                    self.error(
                        f"{path}.rows[{i}][{j}]",
                        "expected string or number",
                    )
                elif isinstance(cell, float) and not math.isfinite(cell):
                    self.error(
                        f"{path}.rows[{i}][{j}]",
                        f"non-finite number {cell!r}",
                    )
        for name in table:
            if name not in {"name", "columns", "rows"}:
                self.error(path, f"unknown field '{name}'")

    def check_failures(self, doc):
        failures = doc.get("failures")
        self.check_fields(failures, FAILURES_FIELDS, "$.failures")
        if not isinstance(failures, dict):
            return
        runs = doc.get("runs")
        if not isinstance(runs, list):
            return
        failed = sum(
            1
            for r in runs
            if isinstance(r, dict) and r.get("status") == "failed"
        )
        if failures.get("failed") != failed:
            self.error(
                "$.failures.failed",
                f"claims {failures.get('failed')!r} but "
                f"{failed} run(s) have status 'failed'",
            )
        if failures.get("total") != len(runs):
            self.error(
                "$.failures.total",
                f"claims {failures.get('total')!r} but the document "
                f"carries {len(runs)} run(s)",
            )

    def check_document(self, doc):
        if not isinstance(doc, dict):
            self.error("$", "top level must be an object")
            return
        if doc.get("schema") != SCHEMA:
            self.error("$.schema", f"expected {SCHEMA!r}, got "
                       f"{doc.get('schema')!r}")
        version = doc.get("schema_version")
        if version not in SCHEMA_VERSIONS:
            self.error(
                "$.schema_version",
                f"expected one of {SCHEMA_VERSIONS}, got {version!r}",
            )
        else:
            self.version = version
        if not isinstance(doc.get("tool"), str) or not doc.get("tool"):
            self.error("$.tool", "expected non-empty string")
        config_fields = dict(CONFIG_FIELDS)
        config = doc.get("config")
        if (
            self.version >= 3
            and isinstance(config, dict)
            and "sample_interval" in config
        ):
            # Optional in v3: emitted only when sampling was armed.
            config_fields["sample_interval"] = int
        sampling_on = (
            self.version >= 4
            and isinstance(config, dict)
            and "sampling" in config
        )
        if sampling_on:
            # Optional in v4: emitted only for interval-engine runs.
            config_fields["sampling"] = dict
        self.check_fields(config, config_fields, "$.config")
        if isinstance(config, dict):
            interval = config.get("sample_interval")
            if interval is not None and (
                not isinstance(interval, int)
                or isinstance(interval, bool)
                or interval <= 0
            ):
                self.error(
                    "$.config.sample_interval",
                    "expected positive integer",
                )
        if sampling_on:
            sampling = config["sampling"]
            self.check_fields(
                sampling, SAMPLING_CONFIG_FIELDS, "$.config.sampling"
            )
            if isinstance(sampling, dict):
                mode = sampling.get("mode")
                if isinstance(mode, str) and mode not in SAMPLE_MODES:
                    self.error(
                        "$.config.sampling.mode",
                        f"expected one of {SAMPLE_MODES}, got {mode!r}",
                    )
        notes = doc.get("notes")
        if not isinstance(notes, list) or not all(
            isinstance(n, str) for n in notes or []
        ):
            self.error("$.notes", "expected array of strings")
        elif any(n == "" for n in notes):
            self.error("$.notes", "empty note (layout hints must be "
                       "dropped by the JSON sink)")
        runs = doc.get("runs")
        if not isinstance(runs, list):
            self.error("$.runs", "expected array")
        else:
            for i, run in enumerate(runs):
                self.check_run(run, f"$.runs[{i}]")
            # The v4 payload and the config that produced it appear
            # together: a sampled schedule yields estimates on every
            # ok run, a detailed-only document carries none.
            if self.version >= 4:
                for i, run in enumerate(runs):
                    if not isinstance(run, dict):
                        continue
                    if run.get("status") == "failed":
                        continue
                    if sampling_on and "sampled" not in run:
                        self.error(
                            f"$.runs[{i}]",
                            "config declares sampling but the run "
                            "carries no 'sampled' estimates",
                        )
                    elif not sampling_on and "sampled" in run:
                        self.error(
                            f"$.runs[{i}].sampled",
                            "present without a config sampling object",
                        )
        if self.version >= 2:
            self.check_failures(doc)
        tables = doc.get("tables")
        if not isinstance(tables, list):
            self.error("$.tables", "expected array")
        else:
            for i, table in enumerate(tables):
                self.check_table(table, f"$.tables[{i}]")
        known = {
            "schema",
            "schema_version",
            "tool",
            "config",
            "notes",
            "runs",
            "tables",
        }
        if self.version >= 2:
            known.add("failures")
        for name in doc:
            if name not in known:
                self.error("$", f"unknown field '{name}'")


def main(argv):
    if len(argv) > 2 or (len(argv) == 2 and argv[1] in ("-h", "--help")):
        sys.stderr.write(__doc__)
        return 2
    try:
        if len(argv) == 2 and argv[1] != "-":
            with open(argv[1], "r", encoding="utf-8") as f:
                text = f.read()
            source = argv[1]
        else:
            text = sys.stdin.read()
            source = "<stdin>"
    except OSError as e:
        sys.stderr.write(f"check_report: {e}\n")
        return 1

    try:
        doc = json.loads(text, parse_constant=reject_constant)
    except (json.JSONDecodeError, ValueError) as e:
        sys.stderr.write(f"check_report: {source}: not JSON: {e}\n")
        return 1

    checker = Checker()
    checker.check_document(doc)
    if checker.errors:
        for error in checker.errors:
            sys.stderr.write(f"check_report: {source}: {error}\n")
        sys.stderr.write(
            f"check_report: {source}: {len(checker.errors)} violation(s) "
            f"of pinte-report v{checker.version}\n"
        )
        return 1
    runs = doc.get("runs", [])
    failed = sum(
        1
        for r in runs
        if isinstance(r, dict) and r.get("status") == "failed"
    )
    tables = len(doc.get("tables", []))
    status = f", {failed} failed" if failed else ""
    print(
        f"check_report: {source}: valid pinte-report "
        f"v{checker.version} ({len(runs)} runs{status}, "
        f"{tables} tables)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
