# ctest helper: chaos acceptance for the spool campaign backend.
# All the logic lives in tools/chaos_spool.py (process-group SIGKILL
# and done-marker polling need real process control); this wrapper
# just adapts the ctest invocation convention the other check_*.cmake
# helpers use.
#
# Invoked from tools/CMakeLists.txt with -DPINTESIM=... -DPYTHON=...
# -DCHECKER=<check_report.py> -DCHAOS=<chaos_spool.py> -DWORKDIR=...

execute_process(
    COMMAND ${PYTHON} ${CHAOS} ${PINTESIM} ${CHECKER} ${WORKDIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "spool chaos acceptance failed (${rc}):\n${out}\n${err}")
endif()
message(STATUS "${out}")
