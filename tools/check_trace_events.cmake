# ctest helper: run pintesim with --trace-events and validate that the
# emitted file is well-formed Chrome tracing JSON: loadable with
# json.load, carrying the run-phase spans and the documented per-event
# fields. Invoked from tools/CMakeLists.txt with -DPINTESIM=...
# -DPYTHON=... -DWORKDIR=...

set(trace "${WORKDIR}/pintesim_trace.json")

execute_process(
    COMMAND ${PINTESIM}
        --workload 450.soplex --pinduce 0.2
        --warmup 2000 --roi 6000
        --trace-events=${trace}
    RESULT_VARIABLE sim_rc
    OUTPUT_VARIABLE sim_out
    ERROR_VARIABLE sim_err)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR
        "pintesim failed (${sim_rc}):\n${sim_out}\n${sim_err}")
endif()

execute_process(
    COMMAND ${PYTHON} -c "
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc['traceEvents']
assert doc['displayTimeUnit'] == 'ms', doc['displayTimeUnit']
assert isinstance(doc['droppedEvents'], int)
assert events, 'no events collected'
names = set()
for e in events:
    assert e['ph'] in ('X', 'i'), e
    for key in ('name', 'cat', 'pid', 'tid', 'ts'):
        assert key in e, (key, e)
    if e['ph'] == 'X':
        assert e['dur'] >= 0, e
        names.add(e['name'])
assert any(n.startswith('warmup') for n in names), names
assert any(n.startswith('measure') for n in names), names
print(f'check_trace_events: {len(events)} events, phases ok')
" ${trace}
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "trace validation failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
