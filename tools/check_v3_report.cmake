# ctest helper: run pintesim with --sample-interval so the report
# carries the schema-v3 observability payloads (timeseries +
# histograms), then validate it with check_report.py and make sure
# plot_timeseries.py can render it. Invoked from tools/CMakeLists.txt
# with -DPINTESIM=... -DPYTHON=... -DCHECKER=... -DPLOTTER=...
# -DWORKDIR=...

set(report "${WORKDIR}/pintesim_v3_report.json")

execute_process(
    COMMAND ${PINTESIM}
        --workload 450.soplex --pinduce 0.2
        --warmup 2000 --roi 6000 --sample-interval=1024
        --format json --out ${report}
    RESULT_VARIABLE sim_rc
    OUTPUT_VARIABLE sim_out
    ERROR_VARIABLE sim_err)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR
        "pintesim failed (${sim_rc}):\n${sim_out}\n${sim_err}")
endif()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} ${report}
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "schema validation failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")

# The report must actually contain a time series (a sampling-on run
# that silently dropped it would still validate above), and the
# renderer must accept it.
execute_process(
    COMMAND ${PYTHON} ${PLOTTER} ${report} --path llc.core0.misses
    RESULT_VARIABLE plot_rc
    OUTPUT_VARIABLE plot_out
    ERROR_VARIABLE plot_err)
if(NOT plot_rc EQUAL 0)
    message(FATAL_ERROR
        "plot_timeseries failed (${plot_rc}):\n${plot_out}\n${plot_err}")
endif()
message(STATUS "${plot_out}")
