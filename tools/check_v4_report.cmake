# ctest helper: run pintesim under the interval engine
# (--sample-mode) so the report carries the schema-v4 sampled
# sections (config "sampling" + per-run "sampled" estimates with
# error bars), then validate it with check_report.py and make sure
# the sampled payload is actually present. Invoked from
# tools/CMakeLists.txt with -DPINTESIM=... -DPYTHON=... -DCHECKER=...
# -DWORKDIR=...

set(report "${WORKDIR}/pintesim_v4_report.json")

execute_process(
    COMMAND ${PINTESIM}
        --workload 450.soplex --pinduce 0.2
        --warmup 4000 --roi 30000
        --sample-mode=periodic --sample-interval-length=1000
        --sample-detailed-fraction=0.2
        --format json --out ${report}
    RESULT_VARIABLE sim_rc
    OUTPUT_VARIABLE sim_out
    ERROR_VARIABLE sim_err)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR
        "pintesim failed (${sim_rc}):\n${sim_out}\n${sim_err}")
endif()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} ${report}
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "schema validation failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")

# The document must actually carry the sampled payloads: a
# sampling-on run that silently fell back to detailed execution
# would still validate above (the presence rule only binds runs to
# the config section).
file(READ ${report} report_text)
if(NOT report_text MATCHES "\"sampling\"")
    message(FATAL_ERROR "report lacks the config sampling section")
endif()
if(NOT report_text MATCHES "\"sampled\"")
    message(FATAL_ERROR "report lacks the per-run sampled estimates")
endif()
if(NOT report_text MATCHES "\"induced_theft_rate\"")
    message(FATAL_ERROR "sampled stats lack induced_theft_rate")
endif()
