/**
 * @file
 * pintesim — command-line driver for the PInTE simulator.
 *
 * Runs a single workload (or a pair) on a configurable machine and
 * emits results through a report sink: aligned text (default), the
 * versioned pinte-report JSON schema, or CSV. Everything the library
 * exposes — replacement, inclusion, prefetch and branch-prediction
 * choices, PInTE probability, scope and the DRAM complement — is
 * reachable from here. Options accept both `--flag value` and
 * `--flag=value`; unknown flags and malformed values exit nonzero
 * listing the alternatives.
 *
 * Examples:
 *   pintesim --list
 *   pintesim -w 450.soplex --sweep
 *   pintesim -w 450.soplex -p 0.2 --policy rrip --inclusion exclusive
 *   pintesim -w 450.soplex --pair 470.lbm
 *   pintesim -w 429.mcf -p 0.3 --dram-complement 60 --format=json
 *   pintesim -w 450.soplex --sweep --format=csv --out sweep.csv
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/sensitivity.hh"
#include "common/error.hh"
#include "common/invariant.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/trace_events.hh"
#include "sim/broker.hh"
#include "sim/experiment.hh"
#include "sim/hotpath_bench.hh"
#include "sim/journal.hh"
#include "sim/options.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/sink.hh"
#include "sim/watchdog.hh"
#include "sim/worker_proc.hh"

using namespace pinte;

namespace
{

void
usage()
{
    std::printf(
        "usage: pintesim [options]   (--flag value or --flag=value)\n"
        "  -w, --workload NAME   zoo workload (see --list)\n"
        "  -p, --pinduce P       PInTE probability of induction [0,1]\n"
        "      --sweep           run the standard 12-point P sweep\n"
        "      --pair NAME       2nd-Trace co-run instead of PInTE\n"
        "      --isolation       no contention at all\n"
        "      --isolation=K     campaign backend for --sweep: thread\n"
        "                        (in-process pool, default), process\n"
        "                        (fork-isolated workers: crashes and\n"
        "                        hard hangs become quarantined cells),\n"
        "                        or spool (durable file-queue broker:\n"
        "                        broker and workers all survive\n"
        "                        SIGKILL; requires --spool)\n"
        "      --max-retries N   process/spool backend: attempts per\n"
        "                        cell (process) or shard (spool)\n"
        "                        before quarantine (default 1; only\n"
        "                        worker-level losses are retried)\n"
        "      --spool DIR       spool directory of a spool campaign\n"
        "                        (created if absent; shared by broker\n"
        "                        and workers)\n"
        "      --worker          run as a spool worker: claim and\n"
        "                        execute shards from --spool until the\n"
        "                        campaign completes (all simulation\n"
        "                        parameters come from the spool's\n"
        "                        campaign document, not the CLI)\n"
        "      --shard-size N    spool backend: cells per shard\n"
        "                        (default 1 — loss granularity of one\n"
        "                        cell)\n"
        "      --lease-ttl S     spool backend: reclaim a shard whose\n"
        "                        worker made no progress for S seconds\n"
        "                        (default 30)\n");
    std::printf(
        "      --policy K        llc replacement: %s\n"
        "      --llc-policy K    alias of --policy\n"
        "      --policies LIST   comma-separated replacement-policy\n"
        "                        grid for --sweep: per policy, an\n"
        "                        isolation baseline plus the standard\n"
        "                        12-point P sweep, then a per-policy\n"
        "                        contention-class table with deltas\n"
        "                        against the first policy (thread\n"
        "                        backend only)\n",
        replacementValidValues().c_str());
    std::printf(
        "      --inclusion K     llc inclusion: non inclusive exclusive\n"
        "      --prefetch SSS    prefetch string (000, NN0, NNN, NNI)\n"
        "      --predictor K     bimodal gshare perceptron hashed\n"
        "      --scope K         pinte scope: llc l2 l2+llc\n"
        "      --dram-complement F  add P*F cycles to DRAM accesses\n"
        "      --warmup N        warmup instructions (default 20000)\n"
        "      --roi N           region of interest (default 60000)\n"
        "      --sample N        sample period (default 3000)\n"
        "      --sample-interval N  snapshot every registered counter\n"
        "                        every N cycles into the report's\n"
        "                        time-series section (0 = off)\n"
        "      --sample-mode K   interval engine schedule: off\n"
        "                        periodic random (default off); when\n"
        "                        on, the ROI alternates detailed and\n"
        "                        functional-warming intervals and the\n"
        "                        report carries mean±CI estimates\n"
        "      --sample-interval-length N  instructions per interval\n"
        "                        (default 10000)\n"
        "      --sample-detailed-fraction F  share of intervals run\n"
        "                        detailed, (0,1] (default 0.1)\n"
        "      --sampling-seed N seed of the random interval schedule\n"
        "      --checkpoint FILE architectural checkpoint file: resume\n"
        "                        from it when present, then rewrite it\n"
        "                        every --checkpoint-every instructions\n"
        "      --checkpoint-every N  checkpoint cadence in ROI\n"
        "                        instructions (default roi/10)\n"
        "      --trace-events FILE  write a chrome://tracing JSON\n"
        "                        event trace of the run to FILE\n"
        "      --seed N          run seed (PInTE RNG stream)\n"
        "      --jobs N          worker threads for --sweep "
        "(default: all cores)\n"
        "      --job-timeout S   fail a job stalled for S seconds\n"
        "      --paranoid[=N]    audit machine invariants every N\n"
        "                        cycles (default 4096) and at end of "
        "run\n"
        "      --resume FILE     journal completed runs in FILE and\n"
        "                        serve already-journaled runs from it\n"
        "      --bench-baseline[=LABEL]  run the pinned hot-path\n"
        "                        perf kernels best-of-N and merge the\n"
        "                        batch into --out (default\n"
        "                        BENCH_hotpath.json); see EXPERIMENTS.md\n"
        "      --bench-reps N    repetitions per kernel (default 5)\n"
        "      --bench-quick     smoke-test kernel sizes (perf.smoke)\n"
        "      --format FMT      output format: table json csv\n"
        "      --out FILE        write the report to FILE\n"
        "      --json            shorthand for --format=json\n"
        "      --report          full machine statistics dump\n"
        "      --list            list zoo workloads and exit\n"
        "      --help            this text\n");
}

} // namespace

namespace
{

/**
 * Everything a sweep cell's identity depends on, in a form that
 * round-trips through the spool's campaign document: the raw CLI
 * strings for enum-valued machine knobs (so the worker re-parses
 * exactly what the broker's user typed) plus the numeric scale
 * parameters. A spool worker rebuilds its machine, cell grid and
 * journal keys from this alone; the machine fingerprint and per-cell
 * key checks then prove the reconstruction is exact.
 */
struct SweepConfig
{
    std::string workload = "450.soplex";
    std::string policy;    //!< --policy, empty = machine default
    std::string inclusion; //!< --inclusion
    std::string prefetch;  //!< --prefetch
    std::string predictor; //!< --predictor
    std::string scope;     //!< --scope, empty = not set
    double dramFactor = 0.0;
    ExperimentParams params;
    double jobTimeout = 0.0;
    double leaseTtl = 30.0;
};

/** The machine a SweepConfig describes. */
MachineConfig
sweepMachine(const SweepConfig &sc)
{
    MachineConfig m = MachineConfig::scaled();
    if (!sc.policy.empty())
        m.llc.replacement = parseReplacement(sc.policy);
    if (!sc.inclusion.empty())
        m.llc.inclusion = parseInclusion(sc.inclusion);
    if (!sc.prefetch.empty())
        m.prefetch = PrefetchConfig::parse(sc.prefetch.c_str());
    if (!sc.predictor.empty())
        m.core.predictor = parsePredictor(sc.predictor);
    return m;
}

/** One sweep cell: the spec for induction probability `p`. */
ExperimentSpec
sweepCell(const MachineConfig &machine, const WorkloadSpec &spec,
          const SweepConfig &sc, double p)
{
    ExperimentSpec e(machine);
    e.workload(spec).pinte(p).params(sc.params);
    if (!sc.scope.empty())
        e.scope(parsePInteScope(sc.scope));
    if (sc.dramFactor > 0.0)
        e.dramComplement(sc.dramFactor);
    return e;
}

std::string
sweepConfigToJson(const SweepConfig &sc)
{
    std::ostringstream os;
    {
        JsonWriter w(os, 0);
        w.beginObject();
        w.member("workload", sc.workload);
        w.member("policy", sc.policy);
        w.member("inclusion", sc.inclusion);
        w.member("prefetch", sc.prefetch);
        w.member("predictor", sc.predictor);
        w.member("scope", sc.scope);
        w.member("dram_factor", sc.dramFactor);
        w.member("warmup", static_cast<std::uint64_t>(sc.params.warmup));
        w.member("roi", static_cast<std::uint64_t>(sc.params.roi));
        w.member("sample_every",
                 static_cast<std::uint64_t>(sc.params.sampleEvery));
        w.member("sample_interval_cycles",
                 sc.params.sampleIntervalCycles);
        w.member("sample_mode", toString(sc.params.sampling.mode));
        w.member("sample_interval_length",
                 static_cast<std::uint64_t>(
                     sc.params.sampling.intervalLength));
        w.member("sample_detailed_fraction",
                 sc.params.sampling.detailedFraction);
        w.member("sampling_seed", sc.params.sampling.seed);
        w.member("run_seed", sc.params.runSeed);
        w.member("job_timeout", sc.jobTimeout);
        w.member("lease_ttl", sc.leaseTtl);
        w.endObject();
    }
    return os.str();
}

SweepConfig
sweepConfigFromJson(const JsonValue &v)
{
    SweepConfig sc;
    sc.workload = v.at("workload").asString();
    sc.policy = v.at("policy").asString();
    sc.inclusion = v.at("inclusion").asString();
    sc.prefetch = v.at("prefetch").asString();
    sc.predictor = v.at("predictor").asString();
    sc.scope = v.at("scope").asString();
    sc.dramFactor = v.at("dram_factor").asDouble();
    sc.params.warmup = v.at("warmup").asU64();
    sc.params.roi = v.at("roi").asU64();
    sc.params.sampleEvery = v.at("sample_every").asU64();
    sc.params.sampleIntervalCycles =
        v.at("sample_interval_cycles").asU64();
    sc.params.sampling.mode =
        parseSampleMode(v.at("sample_mode").asString());
    sc.params.sampling.intervalLength =
        v.at("sample_interval_length").asU64();
    sc.params.sampling.detailedFraction =
        v.at("sample_detailed_fraction").asDouble();
    sc.params.sampling.seed = v.at("sampling_seed").asU64();
    sc.params.runSeed = v.at("run_seed").asU64();
    sc.jobTimeout = v.at("job_timeout").asDouble();
    sc.leaseTtl = v.at("lease_ttl").asDouble();
    return sc;
}

/** Strip the newlines JsonWriter emits even at indent 0. */
std::string
flattenJson(const std::string &text)
{
    std::string flat;
    flat.reserve(text.size());
    for (const char c : text)
        if (c != '\n')
            flat += c;
    return flat;
}

/** The spool campaign document: identity (fingerprint + the full
 *  cell-key list) plus the spec workers rebuild their grid from. */
std::string
campaignDocument(const std::string &fingerprint, const SweepConfig &sc,
                 const std::vector<std::string> &keys)
{
    std::string doc = "{\"schema\": \"pinte.spool.campaign\", "
                      "\"tool\": \"pintesim\", \"fingerprint\": " +
                      jsonQuote(fingerprint) +
                      ", \"spec\": " + flattenJson(sweepConfigToJson(sc)) +
                      ", \"cells\": [";
    for (std::size_t k = 0; k < keys.size(); ++k) {
        if (k)
            doc += ", ";
        doc += jsonQuote(keys[k]);
    }
    doc += "]}";
    return doc;
}

/**
 * Spool worker entry (`pintesim --worker --spool DIR`): rebuild the
 * campaign from the spool's document, verify this binary derives the
 * same machine fingerprint and cell keys (config-skew fencing), then
 * claim and execute shards until the campaign completes.
 */
int
spoolWorkerMain(const std::string &spool_dir)
{
    Spool spool(spool_dir);
    // A hand-started worker may beat the broker to the spool: wait
    // for the campaign document rather than failing the race.
    while (!spool.hasCampaign()) {
        if (spool.complete())
            return 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    std::string err;
    const JsonValue doc = parseJson(spool.readCampaign(), &err);
    if (!err.empty() || !doc.isObject())
        throw ConfigError("spool campaign document unparseable: " + err,
                          {"pintesim", spool_dir, ""});
    const SweepConfig sc = sweepConfigFromJson(doc.at("spec"));
    const MachineConfig machine = sweepMachine(sc);
    const std::string fp = machine.fingerprint();
    if (doc.at("fingerprint").asString() != fp)
        throw ConfigError(
            "campaign fingerprint mismatch: this build derives " + fp +
                ", campaign carries " +
                doc.at("fingerprint").asString(),
            {"pintesim", spool_dir, fp});
    const WorkloadSpec spec = findWorkload(sc.workload);
    const auto &points = standardPInduceSweep();
    std::vector<std::string> keys(points.size());
    for (std::size_t k = 0; k < points.size(); ++k)
        keys[k] = journalKey(
            fp, sc.params, spec.name,
            sweepCell(machine, spec, sc, points[k]).contention());
    const JsonValue &cells = doc.at("cells");
    if (cells.array.size() != keys.size())
        throw ConfigError("campaign cell count mismatch",
                          {"pintesim", spool_dir, ""});
    for (std::size_t k = 0; k < keys.size(); ++k)
        if (cells.array[k].asString() != keys[k])
            throw ConfigError("campaign cell key mismatch at index " +
                                  std::to_string(k),
                              {"pintesim", spool_dir, keys[k]});

    SpoolWorkerOptions wopt;
    wopt.leaseTtl = sc.leaseTtl;
    wopt.jobTimeout = sc.jobTimeout;
    wopt.fingerprint = fp;
    runSpoolWorker(
        spool_dir, keys,
        [&](std::size_t k) {
            return sweepCell(machine, spec, sc, points[k])
                .tryRun()
                .result;
        },
        wopt);
    return 0;
}

int
pinteMain(int argc, char **argv)
{
    std::string workload = "450.soplex";
    std::optional<double> pinduce;
    std::optional<std::string> pair;
    bool isolation = false, sweep = false;
    bool report = false;
    bool scope_set = false;
    unsigned jobs = 0;
    double job_timeout = 0.0;
    IsolationMode iso_mode = IsolationMode::Thread;
    std::uint32_t max_retries = 1;
    bool retries_set = false;
    bool worker_mode = false;
    std::string spool_dir;
    std::size_t shard_size = 1;
    double lease_ttl = 30.0;
    SweepConfig sweep_cfg; // raw machine-knob strings for the spool
                           // campaign document (--isolation=spool)
    std::vector<ReplacementKind> grid_policies; // --policies grid
    std::string resume_path;
    bool bench_baseline = false;
    HotpathOptions bench_opt;
    double dram_factor = 0.0;
    PInteScope scope = PInteScope::LlcOnly;
    ReportFormat format = ReportFormat::Table;
    std::string out_path;
    std::string trace_path;
    MachineConfig machine = MachineConfig::scaled();
    ExperimentParams params;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        std::optional<std::string> inline_val;
        if (a.rfind("--", 0) == 0) {
            const auto eq = a.find('=');
            if (eq != std::string::npos) {
                inline_val = a.substr(eq + 1);
                a = a.substr(0, eq);
            }
        }
        auto need = [&]() -> std::string {
            if (inline_val)
                return *inline_val;
            if (i + 1 >= argc)
                fatal("missing value for " + a);
            return argv[++i];
        };
        auto flag = [&]() {
            if (inline_val)
                fatal("option " + a + " takes no value");
        };

        if (a == "-w" || a == "--workload") {
            workload = need();
        } else if (a == "-p" || a == "--pinduce") {
            pinduce = parseProbability(need());
        } else if (a == "--sweep") {
            flag();
            sweep = true;
        } else if (a == "--pair") {
            pair = need();
        } else if (a == "--isolation") {
            // Bare --isolation is the historical no-contention run
            // mode; with an inline value it selects the campaign
            // backend instead (--isolation=thread|process).
            if (inline_val)
                iso_mode = parseIsolation(*inline_val);
            else
                isolation = true;
        } else if (a == "--max-retries") {
            max_retries = parseRetries(a, need());
            retries_set = true;
        } else if (a == "--worker") {
            flag();
            worker_mode = true;
        } else if (a == "--spool") {
            spool_dir = need();
        } else if (a == "--shard-size") {
            shard_size =
                static_cast<std::size_t>(parseCount(a, need()));
        } else if (a == "--lease-ttl") {
            lease_ttl = static_cast<double>(parseTimeout(a, need()));
        } else if (a == "--policy" || a == "--llc-policy") {
            sweep_cfg.policy = need();
            machine.llc.replacement = parseReplacement(sweep_cfg.policy);
        } else if (a == "--policies") {
            grid_policies = parseReplacementList(need());
        } else if (a == "--inclusion") {
            sweep_cfg.inclusion = need();
            machine.llc.inclusion = parseInclusion(sweep_cfg.inclusion);
        } else if (a == "--prefetch") {
            sweep_cfg.prefetch = need();
            machine.prefetch =
                PrefetchConfig::parse(sweep_cfg.prefetch.c_str());
        } else if (a == "--predictor") {
            sweep_cfg.predictor = need();
            machine.core.predictor =
                parsePredictor(sweep_cfg.predictor);
        } else if (a == "--scope") {
            sweep_cfg.scope = need();
            scope = parsePInteScope(sweep_cfg.scope);
            scope_set = true;
        } else if (a == "--dram-complement") {
            dram_factor = parseReal(a, need());
        } else if (a == "--warmup") {
            params.warmup = parseCount(a, need());
        } else if (a == "--roi") {
            params.roi = parseCount(a, need());
        } else if (a == "--sample") {
            params.sampleEvery = parseCount(a, need());
        } else if (a == "--sample-interval") {
            params.sampleIntervalCycles = parseCount(a, need());
        } else if (a == "--sample-mode") {
            params.sampling.mode = parseSampleMode(need());
        } else if (a == "--sample-interval-length") {
            params.sampling.intervalLength = parseCount(a, need());
        } else if (a == "--sample-detailed-fraction") {
            params.sampling.detailedFraction = parseReal(a, need());
        } else if (a == "--sampling-seed") {
            params.sampling.seed = parseCount(a, need());
        } else if (a == "--checkpoint") {
            params.checkpointPath = need();
        } else if (a == "--checkpoint-every") {
            params.checkpointEvery = parseCount(a, need());
        } else if (a == "--trace-events") {
            trace_path = need();
        } else if (a == "--seed") {
            params.runSeed = parseCount(a, need());
        } else if (a == "--jobs") {
            jobs = static_cast<unsigned>(parseCount(a, need()));
        } else if (a == "--job-timeout") {
            job_timeout =
                static_cast<double>(parseTimeout(a, need()));
        } else if (a == "--paranoid") {
            // Value is optional: a bare --paranoid must not consume
            // the next positional argument.
            Paranoid::enable(parseParanoidInterval(
                a, inline_val ? *inline_val : ""));
        } else if (a == "--resume") {
            resume_path = need();
        } else if (a == "--bench-baseline") {
            // Label is optional: a bare --bench-baseline must not
            // consume the next positional argument.
            bench_baseline = true;
            if (inline_val && !inline_val->empty())
                bench_opt.label = *inline_val;
        } else if (a == "--bench-reps") {
            bench_opt.reps =
                static_cast<unsigned>(parseCount(a, need()));
        } else if (a == "--bench-quick") {
            flag();
            bench_opt.quick = true;
        } else if (a == "--format") {
            format = parseReportFormat(need());
        } else if (a == "--out") {
            out_path = need();
        } else if (a == "--json") {
            flag();
            format = ReportFormat::Json;
        } else if (a == "--report") {
            flag();
            report = true;
        } else if (a == "--list") {
            flag();
            for (const auto &s : fullZoo())
                std::printf("%-16s %-14s footprint %5llu KB\n",
                            s.name.c_str(), toString(s.klass),
                            static_cast<unsigned long long>(
                                s.footprintLines * blockSize / 1024));
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option: " + a);
        }
    }

    if (worker_mode) {
        // A spool worker takes its whole configuration from the
        // campaign document; the CLI only locates the spool.
        if (spool_dir.empty())
            throw ConfigError("--worker requires --spool",
                              {"options", "--worker", ""});
        return spoolWorkerMain(spool_dir);
    }
    if (!grid_policies.empty()) {
        if (!sweep)
            throw ConfigError("--policies is a --sweep policy grid; "
                              "add --sweep",
                              {"options", "--policies", ""});
        if (iso_mode != IsolationMode::Thread)
            throw ConfigError(
                "--policies runs on the thread backend only (the "
                "process and spool campaign documents carry a single "
                "machine fingerprint, and the grid needs one machine "
                "per policy)",
                {"options", "--policies", ""});
    }
    if (iso_mode == IsolationMode::Process && !sweep)
        throw ConfigError("--isolation=process is a campaign backend "
                          "and requires --sweep",
                          {"options", "--isolation", "process"});
    if (iso_mode == IsolationMode::Spool) {
        if (!sweep)
            throw ConfigError("--isolation=spool is a campaign "
                              "backend and requires --sweep",
                              {"options", "--isolation", "spool"});
        if (spool_dir.empty())
            throw ConfigError("--isolation=spool requires --spool",
                              {"options", "--isolation", "spool"});
        if (!params.checkpointPath.empty())
            throw ConfigError("--checkpoint does not compose with "
                              "--isolation=spool (checkpoints are "
                              "per-process artifacts)",
                              {"options", "--checkpoint", ""});
    } else if (!spool_dir.empty()) {
        throw ConfigError("--spool requires --isolation=spool or "
                          "--worker",
                          {"options", "--spool", spool_dir});
    }
    if (retries_set && iso_mode != IsolationMode::Process &&
        iso_mode != IsolationMode::Spool)
        throw ConfigError("--max-retries is only meaningful with "
                          "--isolation=process or --isolation=spool "
                          "(the thread backend never retries)",
                          {"options", "--max-retries", ""});

    if (bench_baseline) {
        // tools/bench_baseline mode: measure the pinned hot-path
        // kernels and merge the batch into the baseline document,
        // replacing rows that carry the same label.
        const std::string bench_out =
            out_path.empty() ? "BENCH_hotpath.json" : out_path;
        std::vector<HotpathEntry> merged =
            loadHotpathBaseline(bench_out);
        std::erase_if(merged, [&](const HotpathEntry &e) {
            return e.label == bench_opt.label;
        });
        const auto batch = runHotpathSuite(bench_opt);
        merged.insert(merged.end(), batch.begin(), batch.end());
        Report bench_rep(ReportFormat::Json, bench_out,
                         {"pintesim", hotpathMachine().fingerprint(),
                          ExperimentParams{}});
        bench_rep->table(hotpathTable(merged));
        bench_rep.close();
        for (const auto &e : batch)
            std::fprintf(stderr,
                         "bench-baseline: %-12s best %9.6f s  "
                         "%12.0f /s\n",
                         e.kernel.c_str(), e.bestWallSeconds,
                         e.ratePerSecond);
        return 0;
    }

    // A checkpoint path without an explicit cadence defaults to ten
    // checkpoints across the ROI.
    if (!params.checkpointPath.empty() && params.checkpointEvery == 0)
        params.checkpointEvery = std::max<InstCount>(1, params.roi / 10);

    const WorkloadSpec spec = findWorkload(workload);

    // Arm event tracing for the rest of the process; the guard writes
    // the collected trace on every exit path (including exceptions
    // unwinding to main) and downgrades a write failure to a warning
    // so the report itself still publishes.
    struct TraceWriter
    {
        std::string path;
        ~TraceWriter()
        {
            if (path.empty())
                return;
            try {
                TraceEvents::write(path);
            } catch (const std::exception &e) {
                warn(std::string("event trace not written: ") +
                     e.what());
            }
        }
    } trace_writer;
    if (!trace_path.empty()) {
        trace_writer.path = trace_path;
        TraceEvents::arm();
    }

    if (report) {
        // A report run drives the machine directly so the full stats
        // block (every cache, DRAM, engines) is still live at dump
        // time; RunResult only carries the summary.
        MachineConfig m = machine;
        m.numCores = 1;
        if (pinduce) {
            m.pinte.pInduce = *pinduce;
            m.pinteScope = scope;
        }
        if (dram_factor > 0.0 && pinduce)
            m.dram.contentionExtra =
                static_cast<Cycle>(*pinduce * dram_factor);
        TraceGenerator gen(spec);
        System sys(m, {&gen});
        {
            TraceEvents::Span span("run", "warmup " + spec.name);
            sys.warmup(params.warmup);
        }
        sys.startSampling(params.sampleIntervalCycles);
        {
            TraceEvents::Span span("run", "measure " + spec.name);
            sys.runUntilCore0(params.roi);
        }
        sys.finishSampling();
        if (Paranoid::on()) {
            sys.audit();
            sys.auditStats();
        }
        Report rep(format, out_path,
                   {"pintesim", m.fingerprint(), params});
        emitMachineReport(sys, rep.sink());
        rep.close();
        return 0;
    }

    // Single runs execute on this thread; arm the hang watchdog here
    // (sweep workers re-arm per job via the Runner).
    if (job_timeout > 0.0)
        JobWatchdog::arm(job_timeout);

    Report rep(format, out_path,
               {"pintesim", machine.fingerprint(), params});
    auto emit = [&](const RunResult &r) { rep->run(r); };

    if (pair) {
        const auto results = ExperimentSpec(machine)
                                 .workload(spec)
                                 .secondTrace(findWorkload(*pair))
                                 .params(params)
                                 .runAll();
        for (const auto &r : results)
            emit(r);
        rep.close();
        return 0;
    }

    if (isolation || (!pinduce && !sweep)) {
        emit(ExperimentSpec(machine)
                 .workload(spec)
                 .params(params)
                 .run());
        rep.close();
        return 0;
    }

    auto build = [&](double p) {
        ExperimentSpec e(machine);
        e.workload(spec).pinte(p).params(params);
        // Unlike the old run* entry points, scope and the DRAM
        // complement compose instead of the scope being silently
        // dropped.
        if (scope_set)
            e.scope(scope);
        if (dram_factor > 0.0)
            e.dramComplement(dram_factor);
        return e;
    };

    if (sweep) {
        // The sweep's 12 configurations are independent simulations;
        // run them across the worker pool and emit in sweep order.
        // Jobs are fault-isolated: a faulting point becomes a
        // quarantined "failed" cell in the report while every other
        // point completes.
        std::unique_ptr<RunJournal> journal;
        if (!resume_path.empty())
            journal = std::make_unique<RunJournal>(resume_path);

        if (!grid_policies.empty()) {
            // PInTE × policy grid: one machine per replacement policy,
            // and per policy an isolation baseline (cell 0) plus the
            // standard 12-point P sweep. Every cell is an independent
            // job on the thread pool; each policy's sweep samples are
            // weighted against that same policy's isolation run (a
            // policy competes with itself unloaded, not with another
            // policy's baseline), pooled into one contention curve and
            // classified, with deltas against the first policy. The
            // journal composes: per-policy machine fingerprints keep
            // the cell keys distinct.
            const auto &points = standardPInduceSweep();
            const std::size_t per_policy = 1 + points.size();
            std::vector<MachineConfig> machines;
            std::vector<std::string> fps;
            machines.reserve(grid_policies.size());
            for (const ReplacementKind kind : grid_policies) {
                MachineConfig m = machine;
                m.llc.replacement = kind;
                fps.push_back(m.fingerprint());
                machines.push_back(m);
            }
            auto buildCell = [&](std::size_t pol, std::size_t idx) {
                ExperimentSpec e(machines[pol]);
                e.workload(spec).params(params);
                if (idx > 0) {
                    e.pinte(points[idx - 1]);
                    if (scope_set)
                        e.scope(scope);
                    if (dram_factor > 0.0)
                        e.dramComplement(dram_factor);
                }
                return e;
            };
            Runner runner(jobs);
            runner.jobTimeout(job_timeout);
            const auto flat = runner.map(
                grid_policies.size() * per_policy,
                [&](std::size_t c) {
                    const std::size_t pol = c / per_policy;
                    const std::size_t idx = c % per_policy;
                    const ExperimentSpec e = buildCell(pol, idx);
                    const std::string key = journalKey(
                        fps[pol], params, spec.name, e.contention());
                    if (journal)
                        if (const RunResult *done = journal->find(key))
                            return *done;
                    RunOutcome o = e.tryRun();
                    if (journal && o.ok())
                        journal->record(key, o.result);
                    return std::move(o.result);
                });

            std::vector<PolicyCurve> grid;
            std::size_t grid_failed = 0;
            for (std::size_t pol = 0; pol < grid_policies.size();
                 ++pol) {
                const char *pname =
                    replacementCliName(grid_policies[pol]);
                const RunResult &iso = flat[pol * per_policy];
                PolicyCurve curve;
                curve.policy = pname;
                for (std::size_t idx = 0; idx < per_policy; ++idx) {
                    const RunResult &r = flat[pol * per_policy + idx];
                    if (r.failed())
                        ++grid_failed;
                    // Policy-qualified contention labels keep the
                    // grid's rows apart in the one shared report.
                    RunResult tagged = r;
                    tagged.contention =
                        std::string(pname) + ":" + tagged.contention;
                    emit(tagged);
                    if (idx == 0 || r.failed() || iso.failed())
                        continue;
                    const std::size_t n = std::min(
                        r.samples.size(), iso.samples.size());
                    for (std::size_t s = 0; s < n; ++s)
                        curve.weightedIpc.push_back(weightedIpc(
                            r.samples[s].ipc, iso.samples[s].ipc));
                }
                grid.push_back(std::move(curve));
            }
            rep.close();

            const auto table = classifyPolicyGrid(grid);
            std::printf(
                "policy grid: %s, TPL %.0f%% (deltas vs %s)\n",
                spec.name.c_str(), defaultTpl * 100,
                table.empty() ? "-" : table.front().policy.c_str());
            std::printf("  %-8s %-6s %10s %8s %6s\n", "policy",
                        "class", "sensitive", "delta", "shift");
            for (const auto &row : table)
                std::printf("  %-8s %-6s %9.1f%% %+7.1f%% %+6d\n",
                            row.policy.c_str(), toString(row.cls),
                            row.sensitiveFraction * 100,
                            row.deltaFraction * 100, row.classShift);
            if (grid_failed) {
                std::fprintf(
                    stderr, "pintesim: %zu of %zu grid jobs failed\n",
                    grid_failed, grid_policies.size() * per_policy);
                return 1;
            }
            return 0;
        }

        const std::string fp = machine.fingerprint();
        auto oneTry = [&](double p) {
            const ExperimentSpec e = build(p);
            const std::string key =
                journalKey(fp, params, spec.name, e.contention());
            if (journal)
                if (const RunResult *done = journal->find(key))
                    return *done;
            RunOutcome o = e.tryRun();
            if (journal && o.ok())
                journal->record(key, o.result);
            return std::move(o.result);
        };

        const auto &points = standardPInduceSweep();
        std::vector<RunResult> results;
        if (iso_mode == IsolationMode::Spool) {
            // Durable file-queue backend: shards published to the
            // spool, claimed by worker processes (locally spawned
            // and/or started by hand as `pintesim --worker --spool
            // DIR`), merged as results stream back. Journal hits
            // resolve in the broker without touching the spool; fresh
            // results journal on arrival, so --resume works across
            // broker restarts exactly like the other backends.
            sweep_cfg.workload = spec.name;
            sweep_cfg.dramFactor = dram_factor;
            sweep_cfg.params = params;
            sweep_cfg.jobTimeout = job_timeout;
            sweep_cfg.leaseTtl = lease_ttl;
            std::vector<std::string> keys(points.size());
            for (std::size_t k = 0; k < points.size(); ++k)
                keys[k] = journalKey(fp, params, spec.name,
                                     build(points[k]).contention());
            BrokerOptions bopt;
            bopt.spool = spool_dir;
            bopt.workers =
                jobs ? jobs
                     : std::max(1u,
                                std::thread::hardware_concurrency());
            // argv[0] may be a bare name found via PATH; workers are
            // exec'd directly, so resolve our own binary first (the
            // broker falls back to an execvp PATH search anyway).
            std::string self = argv[0];
            {
                char exe[4096];
                const ::ssize_t len =
                    ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
                if (len > 0)
                    self.assign(exe, static_cast<std::size_t>(len));
            }
            bopt.workerArgv = {self, "--worker", "--spool",
                               spool_dir};
            bopt.leaseTtl = lease_ttl;
            bopt.maxRetries = max_retries;
            bopt.shardSize = shard_size;
            results = runSpoolBroker(
                campaignDocument(fp, sweep_cfg, keys), fp, keys, bopt,
                [&](std::size_t k, RunResult &r) {
                    r.workload = spec.name;
                    r.contention = build(points[k]).contention();
                },
                [&](std::size_t k, const RunResult &r) {
                    if (journal && !r.failed())
                        journal->record(keys[k], r);
                },
                [&](std::size_t k) {
                    return journal ? journal->find(keys[k]) : nullptr;
                });
        } else if (iso_mode == IsolationMode::Process) {
            // Fork-isolated backend: the parent resolves journal hits
            // up front, workers execute only the pending cells, and
            // each result merges into the journal as it arrives so an
            // interrupted campaign still supports --resume.
            results.resize(points.size());
            std::vector<std::size_t> pending;
            std::vector<std::string> keys(points.size());
            for (std::size_t k = 0; k < points.size(); ++k) {
                keys[k] = journalKey(fp, params, spec.name,
                                     build(points[k]).contention());
                const RunResult *done =
                    journal ? journal->find(keys[k]) : nullptr;
                if (done)
                    results[k] = *done;
                else
                    pending.push_back(k);
            }
            ProcOptions popt;
            popt.workers = jobs;
            popt.jobTimeout = job_timeout;
            popt.maxRetries = max_retries;
            const auto fresh = runProcessCampaign(
                pending.size(),
                [&](std::size_t j) {
                    return build(points[pending[j]]).tryRun().result;
                },
                popt,
                [&](std::size_t j, RunResult &r) {
                    r.workload = spec.name;
                    r.contention =
                        build(points[pending[j]]).contention();
                },
                [&](std::size_t j, const RunResult &r) {
                    if (journal && !r.failed())
                        journal->record(keys[pending[j]], r);
                });
            for (std::size_t j = 0; j < pending.size(); ++j)
                results[pending[j]] = fresh[j];
        } else {
            Runner runner(jobs);
            runner.jobTimeout(job_timeout);
            results = runner.map(
                points.size(),
                [&](std::size_t k) { return oneTry(points[k]); });
        }
        std::size_t failed = 0;
        for (const auto &r : results) {
            if (r.failed())
                ++failed;
            emit(r);
        }
        rep.close();
        if (failed) {
            std::fprintf(stderr,
                         "pintesim: %zu of %zu sweep jobs failed\n",
                         failed, results.size());
            return 1;
        }
    } else {
        emit(build(*pinduce).run());
        rep.close();
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Library errors are typed exceptions; keep the one-line fatal UX
    // (and exit code) the old process-killing fatal() provided.
    try {
        return pinteMain(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
