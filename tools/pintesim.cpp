/**
 * @file
 * pintesim — command-line driver for the PInTE simulator.
 *
 * Runs a single workload (or a pair) on a configurable machine and
 * prints aggregate metrics, optionally as one JSON object per run for
 * scripting. Everything the library exposes — replacement, inclusion,
 * prefetch and branch-prediction choices, PInTE probability, scope and
 * the DRAM complement — is reachable from here.
 *
 * Examples:
 *   pintesim --list
 *   pintesim -w 450.soplex --sweep
 *   pintesim -w 450.soplex -p 0.2 --policy rrip --inclusion exclusive
 *   pintesim -w 450.soplex --pair 470.lbm
 *   pintesim -w 429.mcf -p 0.3 --dram-complement 60 --json
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/table.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/options.hh"
#include "sim/report.hh"
#include "sim/runner.hh"

using namespace pinte;

namespace
{

void
usage()
{
    std::cout <<
        "usage: pintesim [options]\n"
        "  -w, --workload NAME   zoo workload (see --list)\n"
        "  -p, --pinduce P       PInTE probability of induction [0,1]\n"
        "      --sweep           run the standard 12-point P sweep\n"
        "      --pair NAME       2nd-Trace co-run instead of PInTE\n"
        "      --isolation       no contention at all\n"
        "      --policy K        llc replacement: lru plru nmru rrip random\n"
        "      --inclusion K     llc inclusion: non inclusive exclusive\n"
        "      --prefetch SSS    prefetch string (000, NN0, NNN, NNI)\n"
        "      --predictor K     bimodal gshare perceptron hashed\n"
        "      --scope K         pinte scope: llc l2 l2+llc\n"
        "      --dram-complement F  add P*F cycles to DRAM accesses\n"
        "      --warmup N        warmup instructions (default 20000)\n"
        "      --roi N           region of interest (default 60000)\n"
        "      --sample N        sample period (default 3000)\n"
        "      --seed N          run seed (PInTE RNG stream)\n"
        "      --jobs N          worker threads for --sweep "
        "(default: all cores)\n"
        "      --json            one JSON object per run on stdout\n"
        "      --report          full machine statistics dump\n"
        "      --list            list zoo workloads and exit\n"
        "      --help            this text\n";
}

void
printJson(const RunResult &r)
{
    std::printf(
        "{\"workload\":\"%s\",\"contention\":\"%s\",\"ipc\":%.6f,"
        "\"miss_rate\":%.6f,\"amat\":%.3f,\"interference_rate\":%.6f,"
        "\"theft_rate\":%.6f,\"branch_accuracy\":%.6f,"
        "\"l2_mpki\":%.3f,\"llc_mpki\":%.3f,\"llc_occupancy\":%.4f,"
        "\"pinte_triggers\":%llu,\"pinte_invalidations\":%llu,"
        "\"cpu_seconds\":%.6f}\n",
        r.workload.c_str(), r.contention.c_str(), r.metrics.ipc,
        r.metrics.missRate, r.metrics.amat,
        r.metrics.interferenceRate, r.metrics.theftRate,
        r.metrics.branchAccuracy, r.metrics.l2Mpki, r.metrics.llcMpki,
        r.metrics.llcOccupancyFraction,
        static_cast<unsigned long long>(r.pinte.triggers),
        static_cast<unsigned long long>(r.pinte.invalidations),
        r.cpuSeconds);
}

void
printText(const RunResult &r)
{
    TextTable t({"metric", "value"});
    t.addRow({"workload", r.workload});
    t.addRow({"contention", r.contention});
    t.addRow({"IPC", fmt(r.metrics.ipc, 4)});
    t.addRow({"LLC miss rate", fmt(r.metrics.missRate, 4)});
    t.addRow({"AMAT (cycles)", fmt(r.metrics.amat, 1)});
    t.addRow({"interference rate",
              fmtPct(r.metrics.interferenceRate)});
    t.addRow({"theft rate", fmtPct(r.metrics.theftRate)});
    t.addRow({"branch accuracy", fmtPct(r.metrics.branchAccuracy)});
    t.addRow({"L2 MPKI", fmt(r.metrics.l2Mpki, 1)});
    t.addRow({"LLC MPKI", fmt(r.metrics.llcMpki, 1)});
    t.addRow({"LLC occupancy",
              fmtPct(r.metrics.llcOccupancyFraction)});
    if (r.pinte.triggers) {
        t.addRow({"PInTE triggers", std::to_string(r.pinte.triggers)});
        t.addRow({"PInTE invalidations",
                  std::to_string(r.pinte.invalidations)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "450.soplex";
    std::optional<double> pinduce;
    std::optional<std::string> pair;
    bool isolation = false, sweep = false, json = false;
    bool report = false;
    unsigned jobs = 0;
    double dram_factor = 0.0;
    PInteScope scope = PInteScope::LlcOnly;
    MachineConfig machine = MachineConfig::scaled();
    ExperimentParams params;

    auto need = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            fatal(std::string("missing value for ") + flag);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-w" || a == "--workload") {
            workload = need(i, a.c_str());
        } else if (a == "-p" || a == "--pinduce") {
            pinduce = parseProbability(need(i, a.c_str()));
        } else if (a == "--sweep") {
            sweep = true;
        } else if (a == "--pair") {
            pair = need(i, a.c_str());
        } else if (a == "--isolation") {
            isolation = true;
        } else if (a == "--policy") {
            machine.llc.replacement =
                parseReplacement(need(i, a.c_str()));
        } else if (a == "--inclusion") {
            machine.llc.inclusion = parseInclusion(need(i, a.c_str()));
        } else if (a == "--prefetch") {
            machine.prefetch =
                PrefetchConfig::parse(need(i, a.c_str()).c_str());
        } else if (a == "--predictor") {
            machine.core.predictor =
                parsePredictor(need(i, a.c_str()));
        } else if (a == "--scope") {
            scope = parsePInteScope(need(i, a.c_str()));
        } else if (a == "--dram-complement") {
            dram_factor = std::stod(need(i, a.c_str()));
        } else if (a == "--warmup") {
            params.warmup = std::stoull(need(i, a.c_str()));
        } else if (a == "--roi") {
            params.roi = std::stoull(need(i, a.c_str()));
        } else if (a == "--sample") {
            params.sampleEvery = std::stoull(need(i, a.c_str()));
        } else if (a == "--seed") {
            params.runSeed = std::stoull(need(i, a.c_str()));
        } else if (a == "--jobs") {
            jobs = static_cast<unsigned>(
                std::stoul(need(i, a.c_str())));
        } else if (a == "--json") {
            json = true;
        } else if (a == "--report") {
            report = true;
        } else if (a == "--list") {
            for (const auto &s : fullZoo())
                std::printf("%-16s %-14s footprint %5llu KB\n",
                            s.name.c_str(), toString(s.klass),
                            static_cast<unsigned long long>(
                                s.footprintLines * blockSize / 1024));
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option: " + a);
        }
    }

    const WorkloadSpec spec = findWorkload(workload);
    auto emit = [&](const RunResult &r) {
        if (json)
            printJson(r);
        else
            printText(r);
    };

    if (report) {
        // A report run drives the machine directly so the full stats
        // block (every cache, DRAM, engines) is still live at dump
        // time; RunResult only carries the summary.
        MachineConfig m = machine;
        m.numCores = 1;
        if (pinduce) {
            m.pinte.pInduce = *pinduce;
            m.pinteScope = scope;
        }
        if (dram_factor > 0.0 && pinduce)
            m.dram.contentionExtra =
                static_cast<Cycle>(*pinduce * dram_factor);
        TraceGenerator gen(spec);
        System sys(m, {&gen});
        sys.warmup(params.warmup);
        sys.runUntilCore0(params.roi);
        printMachineReport(sys, std::cout);
        return 0;
    }

    if (pair) {
        const auto [ra, rb] =
            runPair(spec, findWorkload(*pair), machine, params);
        emit(ra);
        emit(rb);
        return 0;
    }

    if (isolation || (!pinduce && !sweep)) {
        emit(runIsolation(spec, machine, params));
        return 0;
    }

    auto one = [&](double p) {
        if (dram_factor > 0.0)
            return runPInteDramComplement(spec, p, machine, params,
                                          dram_factor);
        if (scope != PInteScope::LlcOnly)
            return runPInteScoped(spec, p, scope, machine, params);
        return runPInte(spec, p, machine, params);
    };

    if (sweep) {
        // The sweep's 12 configurations are independent simulations;
        // run them across the worker pool and emit in sweep order.
        const auto &points = standardPInduceSweep();
        const Runner runner(jobs);
        const auto results = runner.map(
            points.size(),
            [&](std::size_t k) { return one(points[k]); });
        for (const auto &r : results)
            emit(r);
    } else {
        emit(one(*pinduce));
    }
    return 0;
}
