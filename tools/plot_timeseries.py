#!/usr/bin/env python3
"""Render the time-series section of a pinte-report v3 document.

Usage:
    plot_timeseries.py report.json [--path GLOB] [--out PNG]

Reads the "timeseries" object of each ok run (per-interval counter
deltas recorded by `pintesim --sample-interval=N`) and renders one
sparkline per counter path to stdout. Paths can be filtered with
--path (fnmatch glob, e.g. --path 'llc.*.misses'); by default only
paths with at least one nonzero delta are shown.

With --out and matplotlib installed, also writes a line plot per
selected path to a PNG. matplotlib is optional: without it the script
still validates the document and prints the text view, and --out
exits with a diagnostic instead of crashing — the container this repo
builds in ships no plotting stack, so everything load-bearing here is
standard library only.

Exit status 0 on success, 1 when the document has no usable
time series or is not a pinte-report.
"""

import fnmatch
import json
import os
import sys

SPARKS = " .:-=+*#%@"


def sparkline(values):
    """Map a delta row onto a 10-level ASCII ramp."""
    peak = max(values) if values else 0
    if peak == 0:
        return " " * len(values)
    out = []
    for v in values:
        # Nonzero values never render as blank: floor at level 1.
        level = 1 + (v * (len(SPARKS) - 2)) // peak
        out.append(SPARKS[level] if v else SPARKS[0])
    return "".join(out)


def select_paths(series, pattern):
    paths = series.get("paths", [])
    deltas = series.get("deltas", [])
    chosen = []
    for i, p in enumerate(paths):
        if pattern and not fnmatch.fnmatch(p, pattern):
            continue
        column = [row[i] for row in deltas]
        if not pattern and not any(column):
            continue
        chosen.append((p, column))
    return chosen


def render_text(run, pattern):
    series = run.get("timeseries")
    if not isinstance(series, dict):
        return 0
    chosen = select_paths(series, pattern)
    if not chosen:
        return 0
    label = f"{run.get('workload')} vs {run.get('contention')}"
    cycles = series.get("cycles", [])
    print(
        f"== {label}: {len(cycles)} intervals of "
        f"{series.get('interval_cycles')} cycles =="
    )
    width = max(len(p) for p, _ in chosen)
    for p, column in chosen:
        print(f"  {p:<{width}}  |{sparkline(column)}|  "
              f"sum {sum(column)}")
    return len(chosen)


def render_png(doc, pattern, out_path):
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.stderr.write(
            "plot_timeseries: matplotlib not available; "
            "--out needs it (text view unaffected)\n"
        )
        return 1
    fig, ax = plt.subplots(figsize=(10, 6))
    for run in doc.get("runs", []):
        series = run.get("timeseries")
        if not isinstance(series, dict):
            continue
        cycles = series.get("cycles", [])
        for p, column in select_paths(series, pattern):
            ax.plot(cycles, column, label=p)
    ax.set_xlabel("cycle")
    ax.set_ylabel("delta per interval")
    ax.legend(fontsize=6)
    fig.savefig(out_path, dpi=120)
    print(f"plot_timeseries: wrote {out_path}")
    return 0


def main(argv):
    args = argv[1:]
    if not args or args[0] in ("-h", "--help"):
        sys.stderr.write(__doc__)
        return 2
    report_path = None
    pattern = None
    out_path = None
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--path":
            i += 1
            pattern = args[i]
        elif a.startswith("--path="):
            pattern = a.split("=", 1)[1]
        elif a == "--out":
            i += 1
            out_path = args[i]
        elif a.startswith("--out="):
            out_path = a.split("=", 1)[1]
        elif report_path is None:
            report_path = a
        else:
            sys.stderr.write(f"plot_timeseries: unexpected {a!r}\n")
            return 2
        i += 1

    try:
        with open(report_path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"plot_timeseries: {report_path}: {e}\n")
        return 1
    if not isinstance(doc, dict) or doc.get("schema") != "pinte-report":
        sys.stderr.write(
            f"plot_timeseries: {report_path}: not a pinte-report\n"
        )
        return 1

    shown = 0
    for run in doc.get("runs", []):
        if isinstance(run, dict):
            shown += render_text(run, pattern)
    if shown == 0:
        sys.stderr.write(
            "plot_timeseries: no time series selected (run pintesim "
            "with --sample-interval=N, or relax --path)\n"
        )
        return 1
    if out_path:
        return render_png(doc, pattern, out_path)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        # Piping into `head` is a normal way to use this tool; a
        # closed stdout is not an error. Redirect before exiting so
        # the interpreter's stream flush does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
